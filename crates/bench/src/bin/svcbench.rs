//! `svcbench` — the block-device service sweep: N concurrent client
//! threads drive a [`flash_sim::Service`] (4-channel FTL + per-channel
//! SWL) at every combination of client count {1, 2, 4}, engine queue
//! depth {1, 8, 64}, and write cache {off, on}, measuring wall-clock
//! throughput, client-observed latency quantiles (p50/p99/p999), write
//! amplification, and SWL work. Emits `BENCH_service.json` next to a
//! human-readable table.
//!
//! Two guarantees are asserted, not just measured:
//!
//! - **Oracle**: every single-client cache-off arm is replayed through
//!   [`flash_sim::Engine`] directly with the identical op sequence and
//!   logical-clock stamps; the reports must be bit-identical (the service
//!   adds no semantics of its own when the cache is off).
//! - **Offered load**: every client executes the same deterministic op
//!   sequence whether the cache is on or off, so cache-on vs cache-off
//!   deltas (write amplification, flash programs, SWL erases) compare like
//!   with like. Each cache-on point carries those deltas against its
//!   matching cache-off point.
//!
//! Client latencies are wall-clock round-trip times through the service's
//! request queue — they measure the served front-end (queueing + cache +
//! engine pipeline), not the virtual-time device model, and scale with
//! host CPU count like every wall-clock figure in this suite.
//!
//! A pair of **first-failure arms** (always at the quick geometry, with
//! the endurance dropped to [`FAILURE_ENDURANCE`] cycles so blocks
//! actually die) drives the same workload until the first block wears
//! out, cache off vs on — the cache's endurance contribution measured the
//! way the paper's Figure 5 measures SWL's, as time-to-first-failure.
//!
//! The sweep's cache is sized *below* the hot working set with its sync
//! watermark parked at capacity, so every cache-on arm capacity-evicts
//! under the paper-shaped workload itself — `evicted > 0` is asserted per
//! arm. A separate **capacity-eviction arm** isolates the same code path
//! at an 8-page cache with multi-page spans of fresh LBAs, so admissions
//! hit a full cache mid-write and must evict (the watermark drain only
//! runs between write calls) — also asserted, and recorded in
//! `BENCH_service.json`.
//!
//! With `--out FILE` the final cache-on run is re-executed with a live
//! sampler that exports engtop-schema-v3 JSONL — `sample` / `worker` /
//! `lane` / `queue` lines plus the v2 `cache` and v3 `health` lines per
//! tick (the health plane rides the served path: an observer
//! [`flash_telemetry::HealthMonitor`] folds the engine's shared wear-table
//! samples) — so `engtop --check FILE` can gate the export (CI checks a
//! golden fixture produced this way).
//!
//! Usage: `svcbench [quick|scaled|paper] [--ops N] [--out FILE]`

use std::time::Instant;

use flash_bench::{json, print_table, scale_from_args};
use flash_sim::service::cache::CacheConfig;
use flash_sim::service::{Service, ServiceConfig, ServiceRun};
use flash_sim::{
    Engine, EngineConfig, LayerKind, SimConfig, StripedReport, SwlCoordination,
};
use flash_telemetry::runtime::CacheSample;
use flash_telemetry::{HealthMonitor, HealthReport, LatencyHistogram};
use flash_trace::TraceEvent;
use hotid::HotDataConfig;
use nand::{CellKind, CellSpec, ChannelGeometry, Geometry};
use swl_core::rng::SplitMix64;
use swl_core::SwlConfig;

const CHANNELS: u32 = 4;
const SWL_THRESHOLD: u64 = 100;
const CLIENTS: [usize; 3] = [1, 2, 4];
const DEPTHS: [u32; 3] = [1, 8, 64];
/// Write-cache capacity (pages) for every cache-on arm: deliberately
/// smaller than the sweep's hot working set (a single client's hot eighth
/// is ~100 LBAs at the quick scale), with the sync watermark parked at
/// capacity, so the steady state overflows and must capacity-evict — the
/// regime a bounded cache actually lives in. The old 256-page config
/// drained at a 3/4 watermark between calls and could never reach
/// capacity; `evicted > 0` is now asserted for every cache-on sweep arm,
/// not just the dedicated eviction arm.
const CACHE_PAGES: usize = 32;
/// Logical-clock tick per accepted op (matches the service default).
const INTERVAL_NS: u64 = 1_000;
/// Client flush cadence: one durability barrier per this many ops.
const FLUSH_EVERY: usize = 64;

fn ops_from_args(default: usize) -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--ops" {
            let value = args.next().expect("--ops needs a number");
            return value.parse().expect("--ops needs a number");
        }
    }
    default
}

fn out_from_args() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            return Some(args.next().expect("--out needs a path"));
        }
    }
    None
}

fn geometry(scale: &flash_sim::experiments::ExperimentScale) -> ChannelGeometry {
    assert!(
        scale.blocks.is_multiple_of(CHANNELS),
        "{CHANNELS} channels must divide {} blocks",
        scale.blocks
    );
    ChannelGeometry::new(
        CHANNELS,
        1,
        Geometry::new(scale.blocks / CHANNELS, scale.pages_per_block, 2048),
    )
}

fn spec(scale: &flash_sim::experiments::ExperimentScale) -> CellSpec {
    CellKind::Mlc2.spec().with_endurance(scale.endurance)
}

fn swl(scale: &flash_sim::experiments::ExperimentScale) -> SwlConfig {
    scale.swl_config(SWL_THRESHOLD, 0)
}

/// Endurance of the first-failure arms: low enough that the quick-scale
/// chip wears a block out in seconds of wall time.
const FAILURE_ENDURANCE: u32 = 16;
/// Engine queue depth of the first-failure arms.
const FAILURE_DEPTH: u32 = 8;

/// Admission filter for the cache-on arms: hot from the second write.
fn hot() -> HotDataConfig {
    HotDataConfig {
        hot_threshold: 2,
        ..HotDataConfig::default()
    }
}

fn cache_config() -> CacheConfig {
    // Watermark at capacity: the between-call drain only runs once the
    // cache is full, so mid-span admissions against a full cache take the
    // capacity-eviction path (see `eviction_run` for the focused arm).
    CacheConfig::sized(CACHE_PAGES)
        .with_hot(hot())
        .with_watermark(CACHE_PAGES)
}

/// One deterministic client op. Flushes are part of the sequence so the
/// engine-direct oracle can mirror the exact event stream.
#[derive(Debug, Clone)]
enum ClientOp {
    Write { lba: u64, data: Vec<u64> },
    Read { lba: u64, len: usize },
    Flush,
}

/// The per-client sequence, shaped like the paper's workload: a sequential
/// prefill freezes the whole slice once (cold data that then never moves on
/// its own — the reason static wear leveling exists), then hot-rewrite-
/// biased writes (70 %, 1–4 pages, 90 % inside the hot eighth) and reads,
/// with a flush every [`FLUSH_EVERY`] ops. Values encode (client,
/// sequence) so every write is unique.
fn client_ops(client: usize, base: u64, span: u64, ops: usize, seed: u64) -> Vec<ClientOp> {
    let mut rng = SplitMix64::new(seed ^ (0x5EC0 + client as u64));
    let hot_set = (span / 8).max(4).min(span);
    let mut next_value = 0u64;
    let mut value = |client: usize| {
        next_value += 1;
        ((client as u64 + 1) << 40) + next_value
    };
    let mut sequence: Vec<ClientOp> = Vec::new();
    let mut lba = base;
    while lba < base + span {
        let len = 4.min(base + span - lba) as usize;
        sequence.push(ClientOp::Write {
            lba,
            data: (0..len).map(|_| value(client)).collect(),
        });
        lba += len as u64;
    }
    sequence.push(ClientOp::Flush);
    sequence.extend((0..ops).map(|i| {
        if (i + 1) % FLUSH_EVERY == 0 {
            return ClientOp::Flush;
        }
        let len = rng.range_usize(1..5).min(span as usize);
        let lba = base
            + if rng.chance(0.9) {
                rng.next_below(hot_set)
            } else {
                rng.next_below(span)
            }
            .min(span - len as u64);
        if rng.chance(0.7) {
            ClientOp::Write {
                lba,
                data: (0..len).map(|_| value(client)).collect(),
            }
        } else {
            ClientOp::Read { lba, len }
        }
    }));
    sequence
}

/// Pages written by a sequence (the host side of write amplification).
fn host_pages(ops: &[ClientOp]) -> u64 {
    ops.iter()
        .map(|op| match op {
            ClientOp::Write { data, .. } => data.len() as u64,
            _ => 0,
        })
        .sum()
}

struct Point {
    clients: usize,
    queue_depth: u32,
    cache_on: bool,
    wall_s: f64,
    total_ops: u64,
    host_pages: u64,
    report: StripedReport,
    cache: Option<CacheSample>,
    write_hist: LatencyHistogram,
    read_hist: LatencyHistogram,
    flush_hist: LatencyHistogram,
}

impl Point {
    /// Front-end write amplification: flash programs per host page
    /// written. The cache absorbs hot rewrites before they ever reach the
    /// FTL, so this is the figure the cache moves.
    fn wa(&self) -> f64 {
        self.report.device.programs as f64 / self.host_pages.max(1) as f64
    }
}

/// `observed` turns on both observer planes (wall-clock metrics + health)
/// for the JSONL-exporting run; the sweep arms run bare.
fn service_config(depth: u32, cache_on: bool, observed: bool) -> ServiceConfig {
    let mut config = ServiceConfig::default()
        .with_engine(
            EngineConfig::default()
                .with_threads(CHANNELS)
                .with_queue_depth(depth as usize)
                .with_metrics(observed)
                .with_health(observed),
        )
        .with_op_interval_ns(INTERVAL_NS);
    if cache_on {
        config = config.with_cache(cache_config());
    }
    config
}

fn build_service(
    scale: &flash_sim::experiments::ExperimentScale,
    depth: u32,
    cache_on: bool,
    metrics: bool,
) -> Service {
    Service::build(
        LayerKind::Ftl,
        geometry(scale),
        spec(scale),
        Some(swl(scale)),
        SwlCoordination::PerChannel,
        &SimConfig::default(),
        service_config(depth, cache_on, metrics),
    )
    .expect("service build failed")
}

/// Splits ~40 % of the logical space (the default FTL exports the full
/// chip with zero overprovisioning, so near-full footprints would starve
/// GC — the paper's workload writes 36.62 % of its LBA space) into one
/// disjoint slice per client.
fn client_slices(logical_pages: u64, clients: usize) -> Vec<(u64, u64)> {
    let footprint = (logical_pages * 2 / 5).max(clients as u64 * 8);
    let span = footprint / clients as u64;
    (0..clients as u64).map(|c| (c * span, span)).collect()
}

/// One served run: spawns a thread per client, each executing its
/// deterministic sequence, and gathers wall time, latency histograms, and
/// the finished report.
fn served_run(
    scale: &flash_sim::experiments::ExperimentScale,
    clients: usize,
    depth: u32,
    cache_on: bool,
    ops_per_client: usize,
) -> (Point, Vec<Vec<ClientOp>>) {
    let service = build_service(scale, depth, cache_on, false);
    let slices = client_slices(service.logical_pages(), clients);
    let sequences: Vec<Vec<ClientOp>> = slices
        .iter()
        .enumerate()
        .map(|(c, &(base, span))| client_ops(c, base, span, ops_per_client, scale.seed))
        .collect();
    let pages: u64 = sequences.iter().map(|s| host_pages(s)).sum();

    let (server, handles) = service.serve(clients);
    let start = Instant::now();
    let workers: Vec<_> = handles
        .into_iter()
        .zip(sequences.iter().cloned())
        .map(|(mut client, ops)| {
            std::thread::spawn(move || {
                for op in ops {
                    match op {
                        ClientOp::Write { lba, data } => {
                            client.write(lba, data).expect("write failed")
                        }
                        ClientOp::Read { lba, len } => {
                            client.read(lba, len).map(drop).expect("read failed")
                        }
                        ClientOp::Flush => client.flush().expect("flush failed"),
                    }
                }
                client
            })
        })
        .collect();
    let mut write_hist = LatencyHistogram::new();
    let mut read_hist = LatencyHistogram::new();
    let mut flush_hist = LatencyHistogram::new();
    for worker in workers {
        let client = worker.join().expect("client thread panicked");
        write_hist.merge(client.write_latency());
        read_hist.merge(client.read_latency());
        flush_hist.merge(client.flush_latency());
    }
    let wall_s = start.elapsed().as_secs_f64();
    let service = server.join();
    let total_ops = service.ops();
    let ServiceRun { run, cache, .. } = service.finish().expect("service finish failed");
    (
        Point {
            clients,
            queue_depth: depth,
            cache_on,
            wall_s,
            total_ops,
            host_pages: pages,
            report: run.report,
            cache,
            write_hist,
            read_hist,
            flush_hist,
        },
        sequences,
    )
}

/// Replays a single client's sequence straight through [`Engine`],
/// mirroring the cache-less service exactly: write/read ops tick the
/// logical clock by [`INTERVAL_NS`], reads synchronize the pipeline, a
/// flush is a barrier without a tick.
fn engine_mirror(
    scale: &flash_sim::experiments::ExperimentScale,
    depth: u32,
    ops: &[ClientOp],
) -> StripedReport {
    let mut engine = Engine::new(
        LayerKind::Ftl,
        geometry(scale),
        spec(scale),
        Some(swl(scale)),
        SwlCoordination::PerChannel,
        &SimConfig::default(),
        EngineConfig::default()
            .with_threads(CHANNELS)
            .with_queue_depth(depth as usize),
    )
    .expect("engine build failed");
    let mut clock = 0u64;
    for op in ops {
        match op {
            ClientOp::Write { lba, data } => {
                clock += INTERVAL_NS;
                engine
                    .submit_write_data(clock, *lba, data)
                    .expect("mirror write failed");
            }
            ClientOp::Read { lba, len } => {
                clock += INTERVAL_NS;
                engine
                    .submit(TraceEvent::read_span(clock, *lba, *len as u32))
                    .expect("mirror read failed");
                engine.flush().expect("mirror read flush failed");
            }
            ClientOp::Flush => engine.flush().expect("mirror flush failed"),
        }
    }
    engine.flush().expect("mirror final flush failed");
    engine.finish().expect("mirror finish failed").report
}

/// One first-failure measurement: the op index (logical clock) at which
/// the first block crossed its endurance limit.
struct FailurePoint {
    cache_on: bool,
    /// Accepted host ops (write/read ticks) before the fatal erase.
    ops_to_failure: u64,
    /// Host pages written across those ops.
    host_pages_to_failure: u64,
    /// Chip-wide block erases at the failure.
    total_erases: u64,
}

/// Drives the single-client workload until the first block wears out and
/// reports *when* (in accepted host ops — the service's logical clock, so
/// the figure is deterministic and comparable cache-on vs cache-off).
///
/// Always runs at the quick geometry with [`FAILURE_ENDURANCE`]-cycle
/// blocks: first failure needs every block worn to its limit, which at the
/// sweep scales would take minutes to hours for no extra signal — the
/// paper's Figure 5 ratio logic (scaled endurance preserves the
/// comparison) applies unchanged.
fn failure_run(cache_on: bool) -> FailurePoint {
    let scale = flash_sim::experiments::ExperimentScale::quick();
    let mut service = Service::build(
        LayerKind::Ftl,
        geometry(&scale),
        CellKind::Mlc2.spec().with_endurance(FAILURE_ENDURANCE),
        Some(swl(&scale)),
        SwlCoordination::PerChannel,
        &SimConfig::default(),
        service_config(FAILURE_DEPTH, cache_on, false),
    )
    .expect("service build failed");
    let (base, span) = client_slices(service.logical_pages(), 1)[0];
    // Host pages written per accepted (clock-ticking) op, so the page
    // count up to the fatal erase can be reconstructed afterwards.
    let mut pages_per_op: Vec<u64> = Vec::new();
    let prefill_ops = span.div_ceil(4) as usize + 1;
    let mut chunk_seed = scale.seed;
    'drive: loop {
        let chunk = client_ops(0, base, span, 100_000, chunk_seed);
        // Later chunks skip the sequential prefill — it belongs to the
        // workload's one-time cold-data setup, not the steady state.
        let skip = if chunk_seed == scale.seed { 0 } else { prefill_ops };
        for op in chunk.into_iter().skip(skip) {
            match op {
                ClientOp::Write { lba, data } => {
                    pages_per_op.push(data.len() as u64);
                    service.write(lba, &data).expect("failure-arm write failed");
                }
                ClientOp::Read { lba, len } => {
                    pages_per_op.push(0);
                    service.read(lba, len).map(drop).expect("failure-arm read failed");
                }
                ClientOp::Flush => service.flush().expect("failure-arm flush failed"),
            }
            if service.first_failure().is_some() {
                break 'drive;
            }
        }
        chunk_seed = chunk_seed.wrapping_add(1);
    }
    let failure = service.first_failure().expect("loop exits on failure");
    // The engine stamps the fatal erase with its op's logical-clock time;
    // one INTERVAL_NS tick per accepted op maps it back to an op index.
    let ops_to_failure = failure.host_ns / INTERVAL_NS;
    let host_pages_to_failure = pages_per_op
        .iter()
        .take(ops_to_failure as usize)
        .sum();
    FailurePoint {
        cache_on,
        ops_to_failure,
        host_pages_to_failure,
        total_erases: failure.total_erases,
    }
}

/// Write-cache capacity of the eviction arm (tiny on purpose).
const EVICTION_CAPACITY: usize = 8;

/// Drives the write cache into *capacity* eviction, the code path the
/// sweep never reaches (its watermark drain keeps the cache ahead of
/// capacity): the watermark is parked AT capacity so [`need_sync`]'s
/// between-call drain cannot help mid-write, the admission filter admits
/// everything from the first touch, and every write is a 4-page span of
/// fresh LBAs — once the cache fills, admitting the next page of a span
/// must push the oldest entries out. Returns the final counter sample;
/// `evicted > 0` is asserted by the caller.
///
/// [`need_sync`]: flash_sim::service::cache::WriteCache::need_sync
fn eviction_run() -> CacheSample {
    let scale = flash_sim::experiments::ExperimentScale::quick();
    let cache = CacheConfig {
        capacity: EVICTION_CAPACITY,
        sync_watermark: EVICTION_CAPACITY,
        batch: 2,
        hot: HotDataConfig {
            hot_threshold: 1,
            ..HotDataConfig::default()
        },
    };
    let config = ServiceConfig::default()
        .with_engine(
            EngineConfig::default()
                .with_threads(CHANNELS)
                .with_queue_depth(FAILURE_DEPTH as usize),
        )
        .with_op_interval_ns(INTERVAL_NS)
        .with_cache(cache);
    let mut service = Service::build(
        LayerKind::Ftl,
        geometry(&scale),
        spec(&scale),
        Some(swl(&scale)),
        SwlCoordination::PerChannel,
        &SimConfig::default(),
        config,
    )
    .expect("service build failed");
    let (base, span) = client_slices(service.logical_pages(), 1)[0];
    let mut value = 0u64;
    for start in (base..base + span - 4).step_by(4).take(64) {
        let data: Vec<u64> = (0..4)
            .map(|_| {
                value += 1;
                value
            })
            .collect();
        service.write(start, &data).expect("eviction-arm write failed");
    }
    let sample = service.cache_sample().expect("cache was enabled");
    service.finish().expect("eviction-arm finish failed");
    sample
}

/// Re-runs the heaviest cache-on configuration with the live sampler and
/// returns engtop-schema-v3 JSONL (including per-tick `cache` and `health`
/// lines — the latter from an observer monitor over the engine's shared
/// wear table, the served management plane's own data source).
fn observed_run(
    scale: &flash_sim::experiments::ExperimentScale,
    ops_per_client: usize,
) -> Vec<String> {
    const INTERVAL_MS: u64 = 25;
    let clients = *CLIENTS.last().unwrap();
    let depth = *DEPTHS.last().unwrap();
    let service = build_service(scale, depth, true, true);
    let slices = client_slices(service.logical_pages(), clients);
    let metrics = service.metrics_handle();
    let cache_runtime = service.cache_runtime().expect("cache was enabled");
    let health_runtime = service.health_runtime().expect("health was enabled");
    let mut monitor = HealthMonitor::new(health_runtime.config());
    let threads = CHANNELS; // one worker per lane at this depth

    let mut jsonl = vec![json::object(|o| {
        o.str("kind", "engtop_meta")
            .u64("schema", 3)
            .u64("channels", u64::from(CHANNELS))
            .u64("threads", u64::from(threads))
            .u64("queue_depth", u64::from(depth))
            .u64("events", (clients * ops_per_client) as u64)
            .u64("interval_ms", INTERVAL_MS);
    })];

    let (server, handles) = service.serve(clients);
    let workers: Vec<_> = handles
        .into_iter()
        .zip(slices.iter().enumerate())
        .map(|(mut client, (c, &(base, span)))| {
            let ops = client_ops(c, base, span, ops_per_client, scale.seed);
            std::thread::spawn(move || {
                for op in ops {
                    match op {
                        ClientOp::Write { lba, data } => {
                            client.write(lba, data).expect("write failed")
                        }
                        ClientOp::Read { lba, len } => {
                            client.read(lba, len).map(drop).expect("read failed")
                        }
                        ClientOp::Flush => client.flush().expect("flush failed"),
                    }
                }
            })
        })
        .collect();

    let mut seq = 0u64;
    while !workers.iter().all(std::thread::JoinHandle::is_finished) {
        let snap = metrics.snapshot();
        let cache = cache_runtime.sample();
        export_tick(&mut jsonl, seq, &snap, &cache);
        let report = monitor.report_on(&health_runtime.sample(), Some(cache));
        jsonl.push(health_line(seq, snap.elapsed_ns as f64 / 1e6, &report));
        seq += 1;
        std::thread::sleep(std::time::Duration::from_millis(INTERVAL_MS));
    }
    for worker in workers {
        worker.join().expect("client thread panicked");
    }
    let service = server.join();
    let snap = metrics.snapshot();
    let cache = cache_runtime.sample();
    let report = monitor.report_on(&health_runtime.sample(), Some(cache));
    jsonl.push(health_line(seq, snap.elapsed_ns as f64 / 1e6, &report));
    service.finish().expect("service finish failed");

    jsonl.push(json::object(|o| {
        o.str("kind", "final")
            .f64("t_ms", snap.elapsed_ns as f64 / 1e6, 3)
            .u64("ops_submitted", snap.ops_submitted)
            .u64("ops_completed", snap.ops_completed)
            .f64("busy_frac", snap.busy_frac(), 4)
            .f64("starved_frac", snap.starved_frac(), 4)
            .f64("backpressure_frac", snap.backpressure_frac(), 4)
            .f64("host_backpressure_ms", snap.host_backpressure_ns as f64 / 1e6, 3)
            .u64("cmd_high_water", snap.command_high_water() as u64)
            .u64("completion_high_water", snap.completion_queue.high_water as u64)
            .u64("cache_write_hits", cache.write_hits)
            .u64("cache_flushed_pages", cache.flushed_pages);
    }));
    jsonl
}

/// One engtop-schema-v3 `health` line from a mid-run report.
fn health_line(seq: u64, t_ms: f64, report: &HealthReport) -> String {
    json::object(|o| {
        o.str("kind", "health")
            .u64("seq", seq)
            .f64("t_ms", t_ms, 3)
            .u64("state", report.state.code())
            .f64("life_used", report.life_used, 4)
            .u64("host_pages", report.host_pages)
            .u64("wear_max", report.wear.max)
            .u64("wear_p90", report.wear.p90)
            .f64("wear_mean", report.wear.mean, 3)
            .u64("retired", report.retired)
            .f64("tail_rate", report.tail_rate, 6)
            .f64("mean_rate", report.mean_rate, 6)
            .f64("unevenness", report.unevenness_trend, 3);
        // The band is omitted while the forecast is unbounded — the
        // checker treats the three fields as optional together.
        if let (Some(lo), Some(mid), Some(hi)) = (
            report.forecast.earliest,
            report.forecast.central,
            report.forecast.latest,
        ) {
            o.u64("forecast_earliest", lo)
                .u64("forecast_central", mid)
                .u64("forecast_latest", hi);
        }
    })
}

/// One sampler tick: the engtop v1 lines plus the v2 `cache` line.
fn export_tick(
    out: &mut Vec<String>,
    seq: u64,
    snap: &flash_telemetry::EngineSnapshot,
    cache: &CacheSample,
) {
    let t_ms = snap.elapsed_ns as f64 / 1e6;
    out.push(json::object(|o| {
        o.str("kind", "sample")
            .u64("seq", seq)
            .f64("t_ms", t_ms, 3)
            .u64("ops_submitted", snap.ops_submitted)
            .u64("ops_completed", snap.ops_completed)
            .f64("busy_frac", snap.busy_frac(), 4)
            .f64("starved_frac", snap.starved_frac(), 4)
            .f64("backpressure_frac", snap.backpressure_frac(), 4)
            .f64("host_backpressure_ms", snap.host_backpressure_ns as f64 / 1e6, 3)
            .u64("cmd_high_water", snap.command_high_water() as u64)
            .u64("completion_high_water", snap.completion_queue.high_water as u64);
    }));
    for (w, worker) in snap.workers.iter().enumerate() {
        out.push(json::object(|o| {
            o.str("kind", "worker")
                .u64("seq", seq)
                .f64("t_ms", t_ms, 3)
                .u64("worker", w as u64)
                .f64("busy_frac", worker.busy_frac(), 4)
                .f64("starved_frac", worker.starved_frac(), 4)
                .f64("backpressure_frac", worker.backpressure_frac(), 4)
                .f64("idle_frac", worker.idle_frac(), 4)
                .u64("commands", worker.commands)
                .u64("pages", worker.pages);
        }));
    }
    for (l, lane) in snap.lanes.iter().enumerate() {
        out.push(json::object(|o| {
            o.str("kind", "lane")
                .u64("seq", seq)
                .f64("t_ms", t_ms, 3)
                .u64("lane", l as u64)
                .f64("busy_ms", lane.busy_wall_ns as f64 / 1e6, 3)
                .u64("commands", lane.commands)
                .u64("pages", lane.pages);
        }));
    }
    for (w, queue) in snap.command_queues.iter().enumerate() {
        let label = format!("cmd{w}");
        out.push(json::object(|o| {
            o.str("kind", "queue")
                .u64("seq", seq)
                .f64("t_ms", t_ms, 3)
                .str("queue", &label)
                .u64("len", queue.len as u64)
                .u64("high_water", queue.high_water as u64)
                .u64("capacity", queue.capacity as u64);
        }));
    }
    out.push(json::object(|o| {
        o.str("kind", "queue")
            .u64("seq", seq)
            .f64("t_ms", t_ms, 3)
            .str("queue", "completion")
            .u64("len", snap.completion_queue.len as u64)
            .u64("high_water", snap.completion_queue.high_water as u64)
            .u64("capacity", snap.completion_queue.capacity as u64);
    }));
    out.push(json::object(|o| {
        o.str("kind", "cache")
            .u64("seq", seq)
            .f64("t_ms", t_ms, 3)
            .u64("write_hits", cache.write_hits)
            .u64("read_hits", cache.read_hits)
            .u64("admitted", cache.admitted)
            .u64("write_through", cache.write_through)
            .u64("flushed_pages", cache.flushed_pages)
            .u64("flush_batches", cache.flush_batches)
            .u64("evicted", cache.evicted)
            .u64("trimmed", cache.trimmed)
            .u64("dirty", cache.dirty)
            .u64("capacity", cache.capacity);
    }));
}

fn main() {
    let scale = scale_from_args();
    let total_ops = ops_from_args(20_000);
    let out = out_from_args();
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "service sweep: FTL x{CHANNELS}ch, {total_ops} total client ops, {} blocks x {} \
         pages, endurance {}, SWL (T={SWL_THRESHOLD}, k=0, per-channel), cache \
         {CACHE_PAGES} pages (hot threshold 2), flush every {FLUSH_EVERY} ops, {cpus} cpu(s)",
        scale.blocks, scale.pages_per_block, scale.endurance
    );

    let mut points: Vec<Point> = Vec::new();
    let mut oracle_arms = 0usize;
    for &clients in &CLIENTS {
        let ops_per_client = total_ops / clients;
        for &depth in &DEPTHS {
            for cache_on in [false, true] {
                let (point, sequences) =
                    served_run(&scale, clients, depth, cache_on, ops_per_client);
                if clients == 1 && !cache_on {
                    let reference = engine_mirror(&scale, depth, &sequences[0]);
                    assert_eq!(
                        point.report, reference,
                        "depth={depth}: cache-off service diverged from the direct engine"
                    );
                    oracle_arms += 1;
                }
                points.push(point);
            }
        }
    }

    let off_wa = |clients: usize, depth: u32| {
        points
            .iter()
            .find(|p| p.clients == clients && p.queue_depth == depth && !p.cache_on)
            .expect("sweep covers cache-off")
    };

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let hit_rate = p
                .cache
                .map_or(0.0, |c| c.write_hit_rate());
            vec![
                p.clients.to_string(),
                p.queue_depth.to_string(),
                if p.cache_on { "on" } else { "off" }.to_string(),
                format!("{:.3}", p.wall_s),
                format!("{:.0}", p.total_ops as f64 / p.wall_s),
                format!("{}", p.write_hist.quantile(0.5) / 1_000),
                format!("{}", p.write_hist.quantile(0.99) / 1_000),
                format!("{}", p.write_hist.quantile(0.999) / 1_000),
                format!("{:.3}", p.wa()),
                format!("{:.1}%", hit_rate * 100.0),
                p.report.counters.swl_erases.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "clients", "depth", "cache", "wall s", "ops/s", "w p50 µs", "w p99 µs",
            "w p999 µs", "WA", "hit rate", "swl erases",
        ],
        &rows,
    );
    println!(
        "\n{oracle_arms} single-client cache-off arm(s) bit-identical to the direct engine"
    );
    for p in points.iter().filter(|p| p.cache_on) {
        let cache = p.cache.as_ref().expect("cache-on arm samples its cache");
        assert!(
            cache.evicted > 0,
            "clients={} depth={}: the {CACHE_PAGES}-page sweep cache must capacity-evict \
             under the paper-shaped workload (admitted {}, evicted {})",
            p.clients,
            p.queue_depth,
            cache.admitted,
            cache.evicted,
        );
    }
    println!(
        "every cache-on sweep arm capacity-evicted ({CACHE_PAGES}-page cache, watermark at \
         capacity)"
    );
    for p in points.iter().filter(|p| p.cache_on) {
        let off = off_wa(p.clients, p.queue_depth);
        println!(
            "clients={} depth={}: cache cut WA {:.3} -> {:.3} ({:.0}% fewer programs), \
             SWL erases {} -> {}",
            p.clients,
            p.queue_depth,
            off.wa(),
            p.wa(),
            (1.0 - p.report.device.programs as f64 / off.report.device.programs.max(1) as f64)
                * 100.0,
            off.report.counters.swl_erases,
            p.report.counters.swl_erases,
        );
    }

    let failure_off = failure_run(false);
    let failure_on = failure_run(true);
    println!(
        "first failure (quick geometry, endurance {FAILURE_ENDURANCE}): cache off at op {} \
         ({} host pages, {} erases), cache on at op {} ({} host pages, {} erases) — \
         x{:.2} more host writes before the first block died",
        failure_off.ops_to_failure,
        failure_off.host_pages_to_failure,
        failure_off.total_erases,
        failure_on.ops_to_failure,
        failure_on.host_pages_to_failure,
        failure_on.total_erases,
        failure_on.host_pages_to_failure as f64 / failure_off.host_pages_to_failure.max(1) as f64,
    );

    let eviction = eviction_run();
    assert!(
        eviction.evicted > 0,
        "the {EVICTION_CAPACITY}-page watermark-at-capacity arm must capacity-evict \
         (admitted {}, evicted {})",
        eviction.admitted,
        eviction.evicted,
    );
    println!(
        "capacity eviction ({EVICTION_CAPACITY}-page cache, watermark at capacity): \
         {} admitted, {} evicted, {} flushed",
        eviction.admitted, eviction.evicted, eviction.flushed_pages,
    );

    let json_text = json::object(|o| {
        o.str("bench", "service_sweep")
            .str("layer", "ftl")
            .u64("channels", u64::from(CHANNELS))
            .u64("blocks", u64::from(scale.blocks))
            .u64("pages_per_block", u64::from(scale.pages_per_block))
            .u64("endurance", u64::from(scale.endurance))
            .u64("total_client_ops", total_ops as u64)
            .u64("cache_pages", CACHE_PAGES as u64)
            .u64("flush_every_ops", FLUSH_EVERY as u64)
            .u64("cpus", cpus as u64)
            .u64("oracle_arms", oracle_arms as u64)
            .bool("bit_identical", true)
            .bool("sweep_arms_evicted", true)
            .str(
                "caveat",
                "latencies and ops/s are wall-clock figures through the served \
                 front-end and scale with host cpus; WA and swl_erases are \
                 virtual-time device figures — deterministic for single-client \
                 arms, arrival-interleaving-dependent when clients > 1",
            )
            .obj("capacity_eviction", |ev| {
                ev.u64("cache_pages", EVICTION_CAPACITY as u64)
                    .u64("admitted", eviction.admitted)
                    .u64("evicted", eviction.evicted)
                    .u64("flushed_pages", eviction.flushed_pages)
                    .bool("evicted_nonzero", eviction.evicted > 0);
            })
            .obj("first_failure", |ff| {
                ff.u64("endurance", u64::from(FAILURE_ENDURANCE))
                    .u64("queue_depth", u64::from(FAILURE_DEPTH))
                    .str("geometry", "quick")
                    .f64(
                        "lifetime_extension",
                        failure_on.host_pages_to_failure as f64
                            / failure_off.host_pages_to_failure.max(1) as f64,
                        4,
                    )
                    .arr("arms", |a| {
                        for f in [&failure_off, &failure_on] {
                            a.obj(|arm| {
                                arm.bool("cache_on", f.cache_on)
                                    .u64("ops_to_failure", f.ops_to_failure)
                                    .u64("host_pages_to_failure", f.host_pages_to_failure)
                                    .u64("total_erases", f.total_erases);
                            });
                        }
                    });
            })
            .arr("points", |a| {
                for p in &points {
                    let off = off_wa(p.clients, p.queue_depth);
                    a.obj(|row| {
                        row.u64("clients", p.clients as u64)
                            .u64("queue_depth", u64::from(p.queue_depth))
                            .bool("cache_on", p.cache_on)
                            .f64("wall_s", p.wall_s, 3)
                            .f64("ops_per_s", p.total_ops as f64 / p.wall_s, 0)
                            .u64("total_ops", p.total_ops)
                            .u64("host_pages_written", p.host_pages)
                            .u64("flash_programs", p.report.device.programs)
                            .f64("write_amplification", p.wa(), 4)
                            .f64(
                                "ftl_write_amplification",
                                p.report.counters.write_amplification(),
                                4,
                            )
                            .u64("gc_erases", p.report.counters.gc_erases)
                            .u64("swl_erases", p.report.counters.swl_erases)
                            .u64("write_p50_ns", p.write_hist.quantile(0.5))
                            .u64("write_p99_ns", p.write_hist.quantile(0.99))
                            .u64("write_p999_ns", p.write_hist.quantile(0.999))
                            .u64("read_p50_ns", p.read_hist.quantile(0.5))
                            .u64("read_p99_ns", p.read_hist.quantile(0.99))
                            .u64("read_p999_ns", p.read_hist.quantile(0.999))
                            .u64("flush_p50_ns", p.flush_hist.quantile(0.5))
                            .u64("flush_p99_ns", p.flush_hist.quantile(0.99));
                        if let Some(cache) = &p.cache {
                            row.u64("cache_write_hits", cache.write_hits)
                                .u64("cache_read_hits", cache.read_hits)
                                .u64("cache_admitted", cache.admitted)
                                .u64("cache_write_through", cache.write_through)
                                .u64("cache_flushed_pages", cache.flushed_pages)
                                .u64("cache_flush_batches", cache.flush_batches)
                                .u64("cache_evicted", cache.evicted)
                                .u64("cache_trimmed", cache.trimmed)
                                .f64("cache_write_hit_rate", cache.write_hit_rate(), 4)
                                .f64("wa_off", off.wa(), 4)
                                .f64(
                                    "program_reduction_frac",
                                    1.0 - p.report.device.programs as f64
                                        / off.report.device.programs.max(1) as f64,
                                    4,
                                )
                                .f64(
                                    "swl_erases_delta",
                                    p.report.counters.swl_erases as f64
                                        - off.report.counters.swl_erases as f64,
                                    0,
                                );
                        }
                    });
                }
            });
    });
    std::fs::write("BENCH_service.json", json_text + "\n").expect("write BENCH_service.json");
    println!("wrote BENCH_service.json");

    if let Some(path) = out {
        let ops_per_client = total_ops / CLIENTS.last().unwrap();
        let jsonl = observed_run(&scale, ops_per_client);
        std::fs::write(&path, jsonl.join("\n") + "\n").expect("write JSONL export");
        println!("wrote {} JSONL lines to {path} (engtop schema v3)", jsonl.len());
    }
}
