//! `swlspan` — renders a span-instrumented telemetry JSONL log (schema v3,
//! from `swltrace` or any [`flash_telemetry::JsonlSink`]) as latency
//! attribution: a worst-offenders table of the host operations that paid
//! the most device time, with an exact host/gc/swl/merge breakdown of each,
//! and the span tree of the worst ops showing *where* inside the
//! translation layer the time went. Multi-channel logs (with
//! [`Event::Channel`] lane markers) additionally get a per-channel table
//! and the achieved busy-time overlap.
//!
//! ```text
//! swlspan [FILE|-] [--top N] [--tree N] [--check]
//!
//!   FILE     the JSONL log; "-" or absent reads stdin
//!   --top    rows in the worst-offenders table (default 10)
//!   --tree   how many of the worst ops to render as span trees (default 1)
//!   --check  exit non-zero when the span structure is unclean
//! ```

use std::io::Read;
use std::process::ExitCode;

use flash_bench::print_table;
use flash_telemetry::{
    parse_line, Event, OpBreakdown, SpanCause, SpanKind, SpanReplayer, SCHEMA_VERSION,
};

#[derive(Debug)]
struct Options {
    file: Option<String>,
    top: usize,
    tree: usize,
    check: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            file: None,
            top: 10,
            tree: 1,
            check: false,
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" | "--tree" => {
                let value = args
                    .next()
                    .ok_or_else(|| format!("{arg} needs a number"))?
                    .parse::<usize>()
                    .map_err(|e| format!("{arg}: {e}"))?;
                if arg == "--top" {
                    options.top = value;
                } else {
                    options.tree = value;
                }
            }
            "--check" => options.check = true,
            "--help" | "-h" => {
                return Err(
                    "usage: swlspan [FILE|-] [--top N] [--tree N] [--check]".to_owned(),
                )
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?} (try --help)"))
            }
            path => {
                if options.file.is_some() {
                    return Err("only one input file is accepted".to_owned());
                }
                options.file = Some(path.to_owned());
            }
        }
    }
    Ok(options)
}

fn read_input(file: Option<&str>) -> Result<String, String> {
    match file {
        None | Some("-") => {
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| format!("stdin: {e}"))?;
            Ok(text)
        }
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}")),
    }
}

/// One span with its completed children — the rendering-side mirror of the
/// replayer's accounting.
#[derive(Debug)]
struct Node {
    kind: SpanKind,
    begin_ns: u64,
    end_ns: u64,
    children: Vec<Node>,
}

impl Node {
    fn total_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.begin_ns)
    }

    fn self_ns(&self) -> u64 {
        let child: u64 = self.children.iter().map(Node::total_ns).sum();
        self.total_ns().saturating_sub(child)
    }
}

/// Builds span trees from the event stream. Mirrors [`SpanReplayer`]'s
/// recovery rules (a close force-closes still-open descendants at the same
/// stamp, orphan ends are dropped) so the two complete roots in lockstep.
#[derive(Debug, Default)]
struct TreeBuilder {
    stack: Vec<(u64, Node)>,
}

impl TreeBuilder {
    fn observe(&mut self, event: &Event) -> Option<Node> {
        match *event {
            Event::SpanBegin { id, kind, at_ns, .. } => {
                self.stack.push((
                    id,
                    Node {
                        kind,
                        begin_ns: at_ns,
                        end_ns: at_ns,
                        children: Vec::new(),
                    },
                ));
                None
            }
            Event::SpanEnd { id, at_ns } => {
                let pos = self.stack.iter().rposition(|(open, _)| *open == id)?;
                let mut result = None;
                while self.stack.len() > pos {
                    let (_, mut node) = self.stack.pop().expect("len > pos implies non-empty");
                    node.end_ns = at_ns;
                    if let Some((_, parent)) = self.stack.last_mut() {
                        parent.children.push(node);
                    } else {
                        result = Some(node);
                    }
                }
                result
            }
            _ => None,
        }
    }
}

struct Replay {
    /// `(breakdown, tree, channel)` per completed host op, in completion
    /// order; the channel is the lane active when the root span closed
    /// (0 until the first [`Event::Channel`] marker).
    ops: Vec<(OpBreakdown, Node, u32)>,
    events: u64,
    /// Highest channel id seen plus one (1 for single-channel logs).
    channels: u32,
    /// Whether the span structure replayed cleanly.
    clean: bool,
}

fn replay(text: &str) -> Result<Replay, String> {
    let mut replayer = SpanReplayer::new();
    let mut builder = TreeBuilder::default();
    let mut ops = Vec::new();
    let mut events = 0u64;
    let mut first = true;
    let mut channel = 0u32;
    let mut channels = 1u32;
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = parse_line(line).map_err(|e| format!("line {}: {e}", n + 1))?;
        if first {
            first = false;
            match event {
                Event::Meta { version, .. } if version == SCHEMA_VERSION => {}
                Event::Meta { version, .. } => {
                    return Err(format!(
                        "line {}: schema version {version}, this swlspan speaks {SCHEMA_VERSION} \
                         (older logs carry no spans)",
                        n + 1
                    ))
                }
                _ => return Err(format!("line {}: log must start with a meta event", n + 1)),
            }
        }
        events += 1;
        if let Event::Channel { id } = event {
            channel = id;
            channels = channels.max(id + 1);
        }
        let breakdown = replayer.observe(&event);
        let tree = builder.observe(&event);
        if let (Some(op), Some(node)) = (breakdown, tree) {
            ops.push((op, node, channel));
        }
    }
    if first {
        return Err("empty log".to_owned());
    }
    let check = replayer.check();
    let clean = check.is_clean();
    if !clean {
        for error in check.errors() {
            eprintln!("swlspan: warning: {error}");
        }
    }
    Ok(Replay {
        ops,
        events,
        channels,
        clean,
    })
}

fn micros(ns: u64) -> String {
    format!("{:.0}", ns as f64 / 1e3)
}

fn offender_row(rank: usize, op: &OpBreakdown) -> Vec<String> {
    vec![
        format!("{}", rank + 1),
        op.kind.token().to_owned(),
        format!("{:.1}", op.begin_ns as f64 / 1e6),
        micros(op.total_ns()),
        micros(op.ns(SpanCause::Host)),
        micros(op.ns(SpanCause::Gc)),
        micros(op.ns(SpanCause::Swl)),
        micros(op.ns(SpanCause::Merge)),
        op.programs.to_string(),
    ]
}

fn render_tree(node: &Node, prefix: &str, is_last: bool, is_root: bool, out: &mut String) {
    let label = if is_root {
        String::new()
    } else if is_last {
        format!("{prefix}└── ")
    } else {
        format!("{prefix}├── ")
    };
    out.push_str(&format!(
        "{label}{}  total {} µs, self {} µs\n",
        node.kind.token(),
        micros(node.total_ns()),
        micros(node.self_ns()),
    ));
    let child_prefix = if is_root {
        String::new()
    } else if is_last {
        format!("{prefix}    ")
    } else {
        format!("{prefix}│   ")
    };
    for (i, child) in node.children.iter().enumerate() {
        render_tree(
            child,
            &child_prefix,
            i + 1 == node.children.len(),
            false,
            out,
        );
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let text = match read_input(options.file.as_deref()) {
        Ok(text) => text,
        Err(message) => {
            eprintln!("swlspan: {message}");
            return ExitCode::FAILURE;
        }
    };
    let replayed = match replay(&text) {
        Ok(replayed) => replayed,
        Err(message) => {
            eprintln!("swlspan: {message}");
            return ExitCode::FAILURE;
        }
    };
    if replayed.ops.is_empty() {
        println!(
            "swlspan: {} events, no completed host-op spans",
            replayed.events
        );
        if options.check && !replayed.clean {
            eprintln!("swlspan: --check failed: span structure is unclean");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let total_ns: u64 = replayed.ops.iter().map(|(op, ..)| op.total_ns()).sum();
    let mut cause_ns = [0u64; 4];
    let mut programs = 0u64;
    for (op, ..) in &replayed.ops {
        for cause in SpanCause::ALL {
            cause_ns[cause.index()] += op.ns(cause);
        }
        programs += op.programs;
    }
    println!(
        "swlspan: {} events, {} host ops, {:.3} ms device time, {} programs",
        replayed.events,
        replayed.ops.len(),
        total_ns as f64 / 1e6,
        programs,
    );
    let share = |cause: SpanCause| {
        if total_ns == 0 {
            0.0
        } else {
            100.0 * cause_ns[cause.index()] as f64 / total_ns as f64
        }
    };
    println!(
        "attribution: host {:.1}%, gc {:.1}%, swl {:.1}%, merge {:.1}%\n",
        share(SpanCause::Host),
        share(SpanCause::Gc),
        share(SpanCause::Swl),
        share(SpanCause::Merge),
    );

    // Worst offenders: the ops that paid the most device time, with the
    // exact per-cause split of each.
    let mut order: Vec<usize> = (0..replayed.ops.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(replayed.ops[i].0.total_ns()));
    let top = options.top.min(order.len());
    println!("worst {top} of {} ops:", replayed.ops.len());
    let rows: Vec<Vec<String>> = order[..top]
        .iter()
        .enumerate()
        .map(|(rank, &i)| offender_row(rank, &replayed.ops[i].0))
        .collect();
    print_table(
        &[
            "#", "op", "at ms", "total µs", "host µs", "gc µs", "swl µs", "merge µs", "programs",
        ],
        &rows,
    );

    if replayed.channels > 1 {
        let mut per_channel = vec![(0u64, 0u64); replayed.channels as usize];
        for (op, _, channel) in &replayed.ops {
            let slot = &mut per_channel[*channel as usize];
            slot.0 += 1;
            slot.1 += op.total_ns();
        }
        println!("\nper-channel attribution ({} channels):", replayed.channels);
        let rows: Vec<Vec<String>> = per_channel
            .iter()
            .enumerate()
            .map(|(id, (ops, ns))| {
                vec![
                    id.to_string(),
                    ops.to_string(),
                    format!("{:.3}", *ns as f64 / 1e6),
                ]
            })
            .collect();
        print_table(&["channel", "ops", "device ms"], &rows);
        // The busiest channel bounds the array's wall time; the achieved
        // overlap is how much total device time it amortises.
        let busiest = per_channel.iter().map(|(_, ns)| *ns).max().unwrap_or(0);
        if busiest > 0 {
            println!(
                "achieved overlap: \u{d7}{:.2} (total {:.3} ms over busiest channel {:.3} ms)",
                total_ns as f64 / busiest as f64,
                total_ns as f64 / 1e6,
                busiest as f64 / 1e6,
            );
        }
    }

    for &i in order[..options.tree.min(order.len())].iter() {
        let (op, node, _) = &replayed.ops[i];
        println!(
            "\nspan tree of op at device time {:.1} ms ({}):",
            op.begin_ns as f64 / 1e6,
            op.kind.token()
        );
        let mut out = String::new();
        render_tree(node, "", true, true, &mut out);
        print!("{out}");
    }
    if options.check && !replayed.clean {
        eprintln!("swlspan: --check failed: span structure is unclean");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
