//! Regenerates **Table 4**: average / standard deviation / maximum per-block
//! erase counts for FTL and NFTL, baseline and four SWL corner
//! configurations, after a 10-(scaled-)year simulation.
//!
//! Usage: `table4 [quick|scaled|paper]`

use flash_bench::{default_horizon_ns, print_table, scale_from_args};
use flash_sim::experiments::{table4, TABLE4_CONFIGS};

fn main() {
    let scale = scale_from_args();
    let horizon = default_horizon_ns(&scale);
    println!(
        "Table 4: erase-count statistics after {:.2} simulated years\n\
         (scale: {} blocks x {} pages, endurance {}; paper thresholds are\n\
         mapped through scaled_threshold)\n",
        horizon as f64 / flash_sim::experiments::NANOS_PER_YEAR,
        scale.blocks,
        scale.pages_per_block,
        scale.endurance
    );
    let rows = table4(&scale, horizon, &TABLE4_CONFIGS).expect("simulation failed");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.0}", r.avg),
                format!("{:.0}", r.dev),
                r.max.to_string(),
            ]
        })
        .collect();
    print_table(&["configuration", "Avg.", "Dev.", "Max."], &table);
    println!(
        "\npaper shape: SWL slashes Dev. and Max. unless both T and k are\n\
         large; Avg. barely moves (overhead is small)."
    );
}
