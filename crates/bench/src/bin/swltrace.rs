//! `swltrace` — runs an instrumented simulation and streams the telemetry
//! event log as JSONL (one event per line, schema in `flash-telemetry`).
//!
//! ```text
//! swltrace [OPTIONS]
//!
//!   --scale quick|scaled|paper  experiment scale            (default quick)
//!   --layer ftl|nftl            translation layer           (default ftl)
//!   --swl T:K                   paper-value SWL grid point  (default 100:0)
//!   --no-swl                    run the baseline without the SW Leveler
//!   --channels N                stripe over N channels      (default 1)
//!   --events N                  stop after N trace events   (default 200000)
//!   --out FILE                  output path, "-" for stdout (default swltrace.jsonl)
//! ```
//!
//! The run summary goes to stderr so `--out -` can pipe a clean event
//! stream into `swlstat`:
//!
//! ```text
//! swltrace --scale quick --out - | swlstat -
//! ```

use std::io::Write;
use std::process::ExitCode;

use flash_sim::experiments::{instrumented_run, instrumented_striped_run, ExperimentScale};
use flash_sim::{LayerKind, StopCondition};
use flash_telemetry::JsonlSink;

#[derive(Debug)]
struct Options {
    scale: ExperimentScale,
    layer: LayerKind,
    swl: Option<(u64, u32)>,
    channels: u32,
    events: u64,
    out: String,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scale: ExperimentScale::quick(),
            layer: LayerKind::Ftl,
            swl: Some((100, 0)),
            channels: 1,
            events: 200_000,
            out: "swltrace.jsonl".to_owned(),
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--scale" => {
                options.scale = match value("--scale")?.as_str() {
                    "quick" => ExperimentScale::quick(),
                    "scaled" => ExperimentScale::scaled(),
                    "paper" => ExperimentScale::paper(),
                    other => return Err(format!("unknown scale {other:?}")),
                }
            }
            "--layer" => {
                options.layer = match value("--layer")?.as_str() {
                    "ftl" => LayerKind::Ftl,
                    "nftl" => LayerKind::Nftl,
                    other => return Err(format!("unknown layer {other:?}")),
                }
            }
            "--swl" => {
                let spec = value("--swl")?;
                let (t, k) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("--swl expects T:K, got {spec:?}"))?;
                options.swl = Some((
                    t.parse().map_err(|e| format!("--swl threshold: {e}"))?,
                    k.parse().map_err(|e| format!("--swl k: {e}"))?,
                ));
            }
            "--no-swl" => options.swl = None,
            "--channels" => {
                options.channels = value("--channels")?
                    .parse()
                    .map_err(|e| format!("--channels: {e}"))?;
                if options.channels == 0 {
                    return Err("--channels must be at least 1".to_owned());
                }
            }
            "--events" => {
                options.events = value("--events")?
                    .parse()
                    .map_err(|e| format!("--events: {e}"))?
            }
            "--out" => options.out = value("--out")?,
            "--help" | "-h" => {
                return Err("usage: swltrace [--scale quick|scaled|paper] [--layer ftl|nftl] \
                            [--swl T:K | --no-swl] [--channels N] [--events N] [--out FILE]"
                    .to_owned())
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(options)
}

fn run(options: &Options) -> Result<(), String> {
    let writer: Box<dyn Write> = if options.out == "-" {
        Box::new(std::io::stdout().lock())
    } else {
        Box::new(std::fs::File::create(&options.out).map_err(|e| format!("{}: {e}", options.out))?)
    };
    let sink = JsonlSink::new(writer);
    let swl = options.swl.map(|(t, k)| options.scale.swl_config(t, k));
    let stop = StopCondition::events(options.events).or_first_failure();
    // Multi-channel runs stripe over a widened workload so the shared
    // stream carries lane markers; one channel keeps the plain run (and
    // its byte-identical stream).
    let (summary, sink) = if options.channels > 1 {
        let (report, sink) = instrumented_striped_run(
            options.layer,
            options.channels,
            swl,
            &options.scale,
            sink,
            stop,
        )
        .map_err(|e| e.to_string())?;
        (report.to_string(), sink)
    } else {
        let (report, sink) = instrumented_run(options.layer, swl, &options.scale, sink, stop)
            .map_err(|e| e.to_string())?;
        (report.to_string(), sink)
    };
    let lines = sink.lines();
    let mut writer = sink.finish().map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;
    drop(writer);

    eprintln!("{summary}");
    let target = if options.out == "-" {
        "stdout".to_owned()
    } else {
        options.out.clone()
    };
    eprintln!("  telemetry: {lines} events -> {target}");
    Ok(())
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("swltrace: {message}");
            ExitCode::FAILURE
        }
    }
}
