//! `swlstat` — replays a telemetry JSONL log (from `swltrace` or any
//! [`flash_telemetry::JsonlSink`]) into a human-readable report: counter
//! totals, wear-distribution percentiles, sparkline time series of the wear
//! spread and unevenness level, and per-resetting-interval attribution.
//!
//! ```text
//! swlstat [FILE] [--check] [--json]
//!
//!   FILE     the JSONL log; "-" or absent reads stdin
//!   --check  validate only: exit 1 on any schema drift (unknown event
//!            kinds, missing fields, version mismatch), retirement
//!            inconsistency (duplicate retires, erases on retired blocks
//!            — i.e. the retired set disagrees with the final wear map),
//!            or span-structure damage (a span_end without its begin,
//!            out-of-LIFO closes, children outside their parent's bounds,
//!            spans left open with no power cut to excuse them);
//!            print one OK line
//!   --json   machine summary as a single JSON object (for BENCH_*.json)
//! ```

use std::io::Read;
use std::process::ExitCode;

use flash_bench::print_table;
use flash_telemetry::{
    parse_line, Event, IntervalStats, MetricsAggregator, Sink, SpanCause, SpanKind,
    SCHEMA_VERSION,
};

const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
/// Sparklines are resampled down to at most this many cells.
const SPARK_WIDTH: usize = 64;

#[derive(Debug, Default)]
struct Options {
    file: Option<String>,
    check: bool,
    json: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => options.check = true,
            "--json" => options.json = true,
            "--help" | "-h" => return Err("usage: swlstat [FILE|-] [--check] [--json]".to_owned()),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?} (try --help)"))
            }
            path => {
                if options.file.is_some() {
                    return Err("only one input file is accepted".to_owned());
                }
                options.file = Some(path.to_owned());
            }
        }
    }
    Ok(options)
}

fn read_input(file: Option<&str>) -> Result<String, String> {
    match file {
        None | Some("-") => {
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| format!("stdin: {e}"))?;
            Ok(text)
        }
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}")),
    }
}

/// Parses every line, enforcing the schema contract `--check` verifies:
/// a leading `meta` event with the current version, and no undecodable line.
///
/// The snapshot cadence is sized to the log so the time-series sparklines
/// get about one sample per cell regardless of run length.
fn replay(text: &str) -> Result<MetricsAggregator, String> {
    let erases = text
        .lines()
        .filter(|l| l.contains("\"e\":\"erase\""))
        .count() as u64;
    let mut agg = MetricsAggregator::with_snapshot_every((erases / SPARK_WIDTH as u64).max(1));
    let mut first = true;
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = parse_line(line).map_err(|e| format!("line {}: {e}", n + 1))?;
        if first {
            first = false;
            match event {
                Event::Meta { version, .. } if version == SCHEMA_VERSION => {}
                Event::Meta { version, .. } => {
                    return Err(format!(
                        "line {}: schema version {version}, this swlstat speaks {SCHEMA_VERSION}",
                        n + 1
                    ))
                }
                _ => return Err(format!("line {}: log must start with a meta event", n + 1)),
            }
        }
        agg.event(event);
    }
    if first {
        return Err("empty log".to_owned());
    }
    agg.snapshot_now();
    Ok(agg)
}

/// Renders `values` as a sparkline, resampled to at most [`SPARK_WIDTH`]
/// cells and scaled to the observed min..max band.
fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let cells = values.len().min(SPARK_WIDTH);
    let mut sampled = Vec::with_capacity(cells);
    for c in 0..cells {
        // Mean of the chunk this cell covers.
        let lo = c * values.len() / cells;
        let hi = ((c + 1) * values.len() / cells).max(lo + 1);
        sampled.push(values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64);
    }
    let min = sampled.iter().copied().fold(f64::INFINITY, f64::min);
    let max = sampled.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(f64::MIN_POSITIVE);
    sampled
        .iter()
        .map(|&v| {
            let idx = ((v - min) / span * (SPARK_LEVELS.len() - 1) as f64).round() as usize;
            SPARK_LEVELS[idx.min(SPARK_LEVELS.len() - 1)]
        })
        .collect()
}

fn interval_row(stats: &IntervalStats) -> Vec<String> {
    let unevenness = if stats.distinct_blocks == 0 {
        0.0
    } else {
        stats.erases as f64 / stats.distinct_blocks as f64
    };
    vec![
        stats.index.to_string(),
        stats.erases.to_string(),
        stats.distinct_blocks.to_string(),
        format!("{unevenness:.2}"),
        stats.gc_erases.to_string(),
        stats.swl_erases.to_string(),
        stats.gc_copies.to_string(),
        stats.swl_copies.to_string(),
        stats.swl_invokes.to_string(),
        stats.faults.to_string(),
        stats.retires.to_string(),
    ]
}

/// The findings that make a log internally inconsistent: a retire event for
/// an already-retired block, wear-map movement on a block the log claims is
/// out of rotation, or structural damage to the span stream (orphan ends,
/// out-of-LIFO closes, bounds violations, unexcused unclosed spans).
fn audit_errors(agg: &MetricsAggregator) -> Vec<String> {
    let audit = agg.retirement_audit();
    let mut errors = agg.span_check().errors();
    if audit.duplicate_retires > 0 {
        errors.push(format!(
            "{} retire event(s) name an already-retired block",
            audit.duplicate_retires
        ));
    }
    if audit.erases_after_retire > 0 {
        errors.push(format!(
            "{} erase event(s) touch a retired block — the final wear map \
             disagrees with the retired set",
            audit.erases_after_retire
        ));
    }
    errors
}

fn latency_row(label: &str, hist: &flash_telemetry::LatencyHistogram) -> Vec<String> {
    vec![
        label.to_owned(),
        hist.count().to_string(),
        format!("{:.0}", hist.mean_ns() / 1e3),
        format!("{:.0}", hist.quantile(0.5) as f64 / 1e3),
        format!("{:.0}", hist.quantile(0.99) as f64 / 1e3),
        format!("{:.0}", hist.quantile(0.999) as f64 / 1e3),
        format!("{:.0}", hist.max_ns() as f64 / 1e3),
    ]
}

fn print_report(agg: &MetricsAggregator) {
    let c = agg.counters();
    let (version, blocks, ppb) = agg.meta().expect("replay enforces a meta header");
    println!(
        "swlstat: {} events (schema v{version}, {blocks} blocks x {ppb} pages)\n",
        agg.events()
    );

    print_table(
        &["counter", "total"],
        &[
            vec!["host writes".into(), c.host_writes.to_string()],
            vec!["host reads".into(), c.host_reads.to_string()],
            vec!["trims".into(), c.trims.to_string()],
            vec!["page programs".into(), agg.programs().to_string()],
            vec!["GC collections".into(), c.gc_collections.to_string()],
            vec!["full merges".into(), c.full_merges.to_string()],
            vec!["GC merges".into(), c.gc_merges.to_string()],
            vec!["SWL merges".into(), c.swl_merges.to_string()],
            vec!["GC erases".into(), c.gc_erases.to_string()],
            vec!["SWL erases".into(), c.swl_erases.to_string()],
            vec!["external erases".into(), agg.external_erases().to_string()],
            vec!["GC live copies".into(), c.gc_live_copies.to_string()],
            vec!["SWL live copies".into(), c.swl_live_copies.to_string()],
            vec!["SWL invocations".into(), agg.swl_invokes().to_string()],
            vec!["retired blocks".into(), c.retired_blocks.to_string()],
            vec!["faults injected".into(), agg.faults().to_string()],
            vec!["power cuts".into(), agg.power_cuts().to_string()],
        ],
    );

    let w = agg.wear_summary();
    println!(
        "\nwear per block: mean {:.1}, sigma {:.2}, min {}, p50 {}, p90 {}, p99 {}, max {}",
        w.mean, w.std_dev, w.min, w.p50, w.p90, w.p99, w.max
    );
    let (free_depth, candidates) = agg.gauges();
    println!("gauges at last GC pick: free pool {free_depth}, victim candidates {candidates}");

    if agg.spans_completed() > 0 {
        println!(
            "\nspans: {} host ops, write amplification {:.2} (max {} programs under one write)",
            agg.spans_completed(),
            agg.write_amplification(),
            agg.max_write_programs()
        );
        let mut rows = Vec::new();
        for kind in [SpanKind::HostWrite, SpanKind::HostRead, SpanKind::HostTrim] {
            let hist = agg.op_latency(kind).expect("host kinds have histograms");
            if hist.count() > 0 {
                rows.push(latency_row(kind.token(), hist));
            }
        }
        for cause in SpanCause::ALL {
            let hist = agg.cause_latency(cause);
            if hist.count() > 0 {
                rows.push(latency_row(&format!("cause:{}", cause.token()), hist));
            }
        }
        print_table(
            &["latency", "n", "mean µs", "p50 µs", "p99 µs", "p99.9 µs", "max µs"],
            &rows,
        );
    }

    let snaps = agg.snapshots();
    if snaps.len() >= 2 {
        let sigma: Vec<f64> = snaps.iter().map(|s| s.wear.std_dev).collect();
        let max_wear: Vec<f64> = snaps.iter().map(|s| s.wear.max as f64).collect();
        let unevenness: Vec<f64> = snaps.iter().map(|s| s.unevenness).collect();
        println!("\ntime series over {} snapshots (first -> last):", snaps.len());
        println!(
            "  wear sigma   {}  [{:.2} .. {:.2}]",
            sparkline(&sigma),
            sigma.first().unwrap(),
            sigma.last().unwrap()
        );
        println!(
            "  max wear     {}  [{:.0} .. {:.0}]",
            sparkline(&max_wear),
            max_wear.first().unwrap(),
            max_wear.last().unwrap()
        );
        println!(
            "  unevenness   {}  [{:.2} .. {:.2}]",
            sparkline(&unevenness),
            unevenness.first().unwrap(),
            unevenness.last().unwrap()
        );
    }

    let mut intervals: Vec<IntervalStats> = agg.intervals().to_vec();
    let current = agg.current_interval();
    if current.erases > 0 {
        intervals.push(current);
    }
    if !intervals.is_empty() {
        println!("\nresetting intervals (block-granularity fcnt):");
        let headers = [
            "interval", "erases", "blocks", "ecnt/fcnt", "gc-er", "swl-er", "gc-cp", "swl-cp",
            "invokes", "faults", "retired",
        ];
        // Keep the table bounded for long runs: first and last few intervals.
        const HEAD: usize = 8;
        const TAIL: usize = 4;
        if intervals.len() <= HEAD + TAIL {
            let rows: Vec<Vec<String>> = intervals.iter().map(interval_row).collect();
            print_table(&headers, &rows);
        } else {
            let mut rows: Vec<Vec<String>> =
                intervals[..HEAD].iter().map(interval_row).collect();
            rows.push(vec![format!("... {} more", intervals.len() - HEAD - TAIL)]);
            rows.extend(intervals[intervals.len() - TAIL..].iter().map(interval_row));
            print_table(&headers, &rows);
        }
    }
}

fn print_json(agg: &MetricsAggregator) {
    let c = agg.counters();
    let (version, blocks, ppb) = agg.meta().expect("replay enforces a meta header");
    let w = agg.wear_summary();
    println!(
        "{{\"schema\":{version},\"blocks\":{blocks},\"pages_per_block\":{ppb},\
         \"events\":{},\"host_writes\":{},\"host_reads\":{},\"trims\":{},\
         \"programs\":{},\"gc_collections\":{},\"full_merges\":{},\"gc_merges\":{},\
         \"swl_merges\":{},\"gc_erases\":{},\"swl_erases\":{},\"external_erases\":{},\
         \"gc_live_copies\":{},\"swl_live_copies\":{},\"swl_invokes\":{},\
         \"retired_blocks\":{},\"faults\":{},\"power_cuts\":{},\
         \"intervals\":{},\"wear_mean\":{:.4},\
         \"wear_sigma\":{:.4},\"wear_max\":{},\
         \"spans\":{},\"write_amp\":{:.4},\
         \"host_ns\":{},\"gc_ns\":{},\"swl_ns\":{},\"merge_ns\":{}}}",
        agg.events(),
        c.host_writes,
        c.host_reads,
        c.trims,
        agg.programs(),
        c.gc_collections,
        c.full_merges,
        c.gc_merges,
        c.swl_merges,
        c.gc_erases,
        c.swl_erases,
        agg.external_erases(),
        c.gc_live_copies,
        c.swl_live_copies,
        agg.swl_invokes(),
        c.retired_blocks,
        agg.faults(),
        agg.power_cuts(),
        agg.intervals().len(),
        w.mean,
        w.std_dev,
        w.max,
        agg.spans_completed(),
        agg.write_amplification(),
        agg.cause_latency(SpanCause::Host).total_ns(),
        agg.cause_latency(SpanCause::Gc).total_ns(),
        agg.cause_latency(SpanCause::Swl).total_ns(),
        agg.cause_latency(SpanCause::Merge).total_ns(),
    );
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let text = match read_input(options.file.as_deref()) {
        Ok(text) => text,
        Err(message) => {
            eprintln!("swlstat: {message}");
            return ExitCode::FAILURE;
        }
    };
    let agg = match replay(&text) {
        Ok(agg) => agg,
        Err(message) => {
            eprintln!("swlstat: {message}");
            return ExitCode::FAILURE;
        }
    };
    if options.check {
        let errors = audit_errors(&agg);
        if !errors.is_empty() {
            for error in &errors {
                eprintln!("swlstat: {error}");
            }
            return ExitCode::FAILURE;
        }
        println!(
            "swlstat: OK — {} events, schema v{}",
            agg.events(),
            SCHEMA_VERSION
        );
        if options.json {
            print_json(&agg);
        }
        return ExitCode::SUCCESS;
    }
    if options.json {
        print_json(&agg);
    } else {
        print_report(&agg);
    }
    ExitCode::SUCCESS
}
