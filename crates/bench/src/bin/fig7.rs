//! Regenerates **Figure 7**: increased ratio of live-page copyings due to
//! static wear leveling, versus `k`, for T ∈ {100, 400, 700, 1000}.
//!
//! Usage: `fig7 [quick|scaled|paper]`

use flash_bench::{default_horizon_ns, print_table, scale_from_args};
use flash_sim::experiments::{overhead_sweep, PAPER_KS, PAPER_THRESHOLDS};
use flash_sim::LayerKind;

fn main() {
    let scale = scale_from_args();
    let horizon = default_horizon_ns(&scale);
    println!(
        "Figure 7: increased ratio of live-page copyings over {:.2} simulated years\n",
        horizon as f64 / flash_sim::experiments::NANOS_PER_YEAR
    );
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        let (baseline, points) =
            overhead_sweep(kind, &scale, &PAPER_THRESHOLDS, &PAPER_KS, horizon)
                .expect("simulation failed");
        println!(
            "{kind} (baseline: {} live copies, L = {:.2})\n",
            baseline.counters.total_live_copies(),
            baseline.counters.avg_live_copies_per_gc_erase()
        );
        let mut rows = Vec::new();
        for &t in &PAPER_THRESHOLDS {
            let mut row = vec![format!("T={t}")];
            for &k in &PAPER_KS {
                let p = points
                    .iter()
                    .find(|p| p.threshold == t && p.k == k)
                    .expect("grid point present");
                row.push(format!("{:+.2}%", p.copy_overhead * 100.0));
            }
            rows.push(row);
        }
        print_table(&["", "k=0", "k=1", "k=2", "k=3"], &rows);
        println!();
    }
    println!(
        "paper shape: NFTL under 1.5% everywhere; FTL much larger (its\n\
         baseline L is tiny because hot data is written in bursts, so the\n\
         full-block copies forced by SWL weigh heavily in relative terms)."
    );
}
