//! Regenerates **Table 2**: worst-case increased ratio of block erases of a
//! 1 GB MLC×2 chip under static wear leveling (closed form, §4.2).

use flash_bench::print_table;
use swl_core::analysis::table2_rows;

fn main() {
    println!("Table 2: increased ratio of block erases (worst case)\n");
    let rows: Vec<Vec<String>> = table2_rows()
        .into_iter()
        .map(|r| {
            vec![
                r.hot_blocks.to_string(),
                r.cold_blocks.to_string(),
                format!("1:{}", r.cold_blocks / r.hot_blocks.max(1)),
                r.threshold.to_string(),
                format!("{:.3}%", r.increased_ratio * 100.0),
            ]
        })
        .collect();
    print_table(&["H", "C", "H:C", "T", "Increased Ratio"], &rows);
    println!("\npaper: 0.946% / 0.503% / 0.094% / 0.050%");
}
