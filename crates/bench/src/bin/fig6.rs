//! Regenerates **Figure 6**: increased ratio of block erases due to static
//! wear leveling, versus `k`, for T ∈ {100, 400, 700, 1000}.
//!
//! Usage: `fig6 [quick|scaled|paper]`

use flash_bench::{default_horizon_ns, print_table, scale_from_args};
use flash_sim::experiments::{overhead_sweep, PAPER_KS, PAPER_THRESHOLDS};
use flash_sim::LayerKind;

fn main() {
    let scale = scale_from_args();
    let horizon = default_horizon_ns(&scale);
    println!(
        "Figure 6: increased ratio of block erases over {:.2} simulated years\n",
        horizon as f64 / flash_sim::experiments::NANOS_PER_YEAR
    );
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        let (baseline, points) =
            overhead_sweep(kind, &scale, &PAPER_THRESHOLDS, &PAPER_KS, horizon)
                .expect("simulation failed");
        println!(
            "{kind} (baseline: {} erases over {} host writes)\n",
            baseline.counters.total_erases(),
            baseline.counters.host_writes
        );
        let mut rows = Vec::new();
        for &t in &PAPER_THRESHOLDS {
            let mut row = vec![format!("T={t}")];
            for &k in &PAPER_KS {
                let p = points
                    .iter()
                    .find(|p| p.threshold == t && p.k == k)
                    .expect("grid point present");
                row.push(format!("{:+.2}%", p.erase_overhead * 100.0));
            }
            rows.push(row);
        }
        print_table(&["", "k=0", "k=1", "k=2", "k=3"], &rows);
        println!();
    }
    println!(
        "paper shape: small overhead, shrinking with larger T and larger k;\n\
         under 3.5% for FTL and under 1% for NFTL in all cases."
    );
}
