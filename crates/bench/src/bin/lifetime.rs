//! Device-lifetime study (extension beyond the paper): with bad-block
//! management, a worn block is retired and the device keeps serving until
//! writes can no longer be absorbed. How much *usable lifetime* does static
//! wear leveling add, compared to the first-failure metric of Figure 5?
//!
//! Usage: `lifetime [quick|scaled|paper]`

use flash_bench::{print_table, scale_from_args};
use flash_sim::experiments::lifetime_run;
use flash_sim::LayerKind;

fn main() {
    let scale = scale_from_args();
    println!(
        "Device lifetime with bad-block management\n\
         (scale: {} blocks x {} pages, endurance {})\n",
        scale.blocks, scale.pages_per_block, scale.endurance
    );
    let mut rows = Vec::new();
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        for (label, swl) in [
            ("baseline", None),
            ("+SWL (T=100, k=0)", Some(scale.swl_config(100, 0))),
        ] {
            let report = lifetime_run(kind, swl, &scale).expect("simulation failed");
            rows.push(vec![
                format!("{kind} {label}"),
                format!("{:.4}", report.years),
                report
                    .first_failure_years
                    .map(|y| format!("{y:.4}"))
                    .unwrap_or_else(|| "-".into()),
                report.retired_blocks.to_string(),
                report.host_writes.to_string(),
            ]);
        }
    }
    print_table(
        &[
            "configuration",
            "lifetime (y)",
            "first failure (y)",
            "retired",
            "host writes",
        ],
        &rows,
    );
    println!(
        "\nexpected: first failure is pessimistic — the device survives many\n\
         retirements; SWL extends both metrics, and evens wear so that when\n\
         blocks finally start dying, they die together (more retirements in\n\
         a shorter tail)."
    );
}
