//! `engtop` — a live, `top`-style view of the threaded execution engine:
//! runs the 4-channel FTL + per-channel-SWL workload through
//! [`flash_sim::Engine`] with wall-clock metrics enabled, and refreshes a
//! per-worker / per-lane utilization table while the run is in flight by
//! sampling the engine's [`flash_sim::EngineMetricsHandle`] from the main
//! thread (the run itself is driven on a separate thread). Each worker row
//! attributes wall time to **busy** (executing commands), **starved**
//! (blocked popping the command queue), **backpressured** (blocked pushing
//! completions), and derived **idle**; queue gauges show live occupancy
//! against the high-water mark and capacity.
//!
//! With `--out FILE` every sample is also exported as JSONL (one flat
//! object per line: an `engtop_meta` header, then `sample` / `worker` /
//! `lane` / `queue` lines per tick and one trailing `final` line).
//! `engtop --check FILE` validates such an export and exits non-zero on any
//! schema drift — the same contract style as `swlstat --check` /
//! `swlspan --check` — so CI can gate on a golden fixture.
//!
//! Schema v2 adds the `cache` line kind (the service write cache's counter
//! block, emitted by `svcbench --out`); schema v3 adds the `health` line
//! kind (the health plane's per-tick SMART report, also emitted from the
//! service path by `svcbench --out`). The checker still accepts older
//! exports, but each line kind is rejected in a file whose meta declares a
//! schema predating it — engtop itself drives a bare engine and never
//! emits either.
//!
//! ```text
//! engtop [quick|scaled|paper] [--events N] [--threads N] [--depth N]
//!        [--interval-ms N] [--out FILE]
//! engtop --check FILE
//! ```

use std::io::{IsTerminal, Write};
use std::process::ExitCode;
use std::time::Duration;

use flash_bench::json::{self, JsonScalar};
use flash_sim::experiments::{ExperimentScale, CHANNEL_SPAN};
use flash_sim::{Engine, EngineConfig, EngineRun, LayerKind, SimConfig, StopCondition, SwlCoordination};
use flash_telemetry::{EngineSnapshot, LatencyHistogram};
use flash_trace::{SyntheticTrace, TraceEvent, WorkloadSpec};
use nand::{CellKind, ChannelGeometry, Geometry};

/// JSONL export schema version; bump on any line-shape change. v2 added
/// the `cache` line kind for service write-cache counters; v3 added the
/// `health` line kind for per-tick health-plane reports.
const SCHEMA: u64 = 3;
/// Oldest schema version `--check` still accepts.
const MIN_SCHEMA: u64 = 1;
const CHANNELS: u32 = 4;
const SWL_THRESHOLD: u64 = 100;

struct Options {
    scale: ExperimentScale,
    events: u64,
    threads: u32,
    depth: usize,
    interval_ms: u64,
    out: Option<String>,
    check: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        scale: ExperimentScale::scaled(),
        events: 20_000,
        threads: CHANNELS,
        depth: 64,
        interval_ms: 250,
        out: None,
        check: None,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "quick" => options.scale = ExperimentScale::quick(),
            "scaled" => options.scale = ExperimentScale::scaled(),
            "paper" => options.scale = ExperimentScale::paper(),
            "--events" => {
                options.events = value(&mut args, "--events")?
                    .parse()
                    .map_err(|_| "--events needs a number")?;
            }
            "--threads" => {
                options.threads = value(&mut args, "--threads")?
                    .parse()
                    .map_err(|_| "--threads needs a number")?;
            }
            "--depth" => {
                options.depth = value(&mut args, "--depth")?
                    .parse()
                    .map_err(|_| "--depth needs a number")?;
            }
            "--interval-ms" => {
                options.interval_ms = value(&mut args, "--interval-ms")?
                    .parse()
                    .map_err(|_| "--interval-ms needs a number")?;
            }
            "--out" => options.out = Some(value(&mut args, "--out")?),
            "--check" => options.check = Some(value(&mut args, "--check")?),
            "--help" | "-h" => {
                return Err(
                    "usage: engtop [quick|scaled|paper] [--events N] [--threads N] \
                     [--depth N] [--interval-ms N] [--out FILE] | engtop --check FILE"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(options)
}

fn trace(logical_pages: u64, seed: u64) -> impl Iterator<Item = TraceEvent> {
    SyntheticTrace::new(WorkloadSpec::paper(logical_pages).with_seed(seed))
        .map(move |e| e.widen(CHANNEL_SPAN, logical_pages))
}

fn pct(frac: f64) -> String {
    format!("{:5.1}%", frac * 100.0)
}

/// One refresh frame: aggregate header, per-worker rows, per-lane row, and
/// queue gauges, as terminal lines.
fn frame(snap: &EngineSnapshot) -> Vec<String> {
    let mut lines = Vec::new();
    lines.push(format!(
        "t {:8.1} ms | ops {} submitted / {} completed | busy {} starv {} bp {} | host bp {:.1} ms",
        snap.elapsed_ns as f64 / 1e6,
        snap.ops_submitted,
        snap.ops_completed,
        pct(snap.busy_frac()),
        pct(snap.starved_frac()),
        pct(snap.backpressure_frac()),
        snap.host_backpressure_ns as f64 / 1e6,
    ));
    lines.push(format!(
        "{:>7}  {:>6}  {:>6}  {:>6}  {:>6}  {:>9}  {:>11}",
        "worker", "busy", "starv", "bp", "idle", "cmds", "queue l/h/c"
    ));
    for (w, worker) in snap.workers.iter().enumerate() {
        let queue = &snap.command_queues[w];
        lines.push(format!(
            "{:>7}  {:>6}  {:>6}  {:>6}  {:>6}  {:>9}  {:>5}/{}/{}",
            w,
            pct(worker.busy_frac()),
            pct(worker.starved_frac()),
            pct(worker.backpressure_frac()),
            pct(worker.idle_frac()),
            worker.commands,
            queue.len,
            queue.high_water,
            queue.capacity,
        ));
    }
    let lanes = snap
        .lanes
        .iter()
        .enumerate()
        .map(|(l, lane)| format!("{l}:{:.0}ms/{}p", lane.busy_wall_ns as f64 / 1e6, lane.pages))
        .collect::<Vec<_>>()
        .join("  ");
    lines.push(format!("  lanes  {lanes}"));
    lines.push(format!(
        "  completion queue {}/{}/{}",
        snap.completion_queue.len, snap.completion_queue.high_water, snap.completion_queue.capacity
    ));
    lines
}

/// Appends the JSONL lines for one sampled snapshot.
fn export_sample(out: &mut Vec<String>, seq: u64, snap: &EngineSnapshot) {
    let t_ms = snap.elapsed_ns as f64 / 1e6;
    out.push(json::object(|o| {
        o.str("kind", "sample")
            .u64("seq", seq)
            .f64("t_ms", t_ms, 3)
            .u64("ops_submitted", snap.ops_submitted)
            .u64("ops_completed", snap.ops_completed)
            .f64("busy_frac", snap.busy_frac(), 4)
            .f64("starved_frac", snap.starved_frac(), 4)
            .f64("backpressure_frac", snap.backpressure_frac(), 4)
            .f64("host_backpressure_ms", snap.host_backpressure_ns as f64 / 1e6, 3)
            .u64("cmd_high_water", snap.command_high_water() as u64)
            .u64("completion_high_water", snap.completion_queue.high_water as u64);
    }));
    for (w, worker) in snap.workers.iter().enumerate() {
        out.push(json::object(|o| {
            o.str("kind", "worker")
                .u64("seq", seq)
                .f64("t_ms", t_ms, 3)
                .u64("worker", w as u64)
                .f64("busy_frac", worker.busy_frac(), 4)
                .f64("starved_frac", worker.starved_frac(), 4)
                .f64("backpressure_frac", worker.backpressure_frac(), 4)
                .f64("idle_frac", worker.idle_frac(), 4)
                .u64("commands", worker.commands)
                .u64("pages", worker.pages);
        }));
    }
    for (l, lane) in snap.lanes.iter().enumerate() {
        out.push(json::object(|o| {
            o.str("kind", "lane")
                .u64("seq", seq)
                .f64("t_ms", t_ms, 3)
                .u64("lane", l as u64)
                .f64("busy_ms", lane.busy_wall_ns as f64 / 1e6, 3)
                .u64("commands", lane.commands)
                .u64("pages", lane.pages);
        }));
    }
    for (w, queue) in snap.command_queues.iter().enumerate() {
        let label = format!("cmd{w}");
        out.push(queue_line(seq, t_ms, &label, queue));
    }
    out.push(queue_line(seq, t_ms, "completion", &snap.completion_queue));
}

fn queue_line(seq: u64, t_ms: f64, label: &str, q: &flash_telemetry::QueueSample) -> String {
    json::object(|o| {
        o.str("kind", "queue")
            .u64("seq", seq)
            .f64("t_ms", t_ms, 3)
            .str("queue", label)
            .u64("len", q.len as u64)
            .u64("high_water", q.high_water as u64)
            .u64("capacity", q.capacity as u64);
    })
}

fn run(options: &Options) -> Result<(), String> {
    let scale = &options.scale;
    assert!(
        scale.blocks.is_multiple_of(CHANNELS),
        "{CHANNELS} channels must divide {} blocks",
        scale.blocks
    );
    let geometry = ChannelGeometry::new(
        CHANNELS,
        1,
        Geometry::new(scale.blocks / CHANNELS, scale.pages_per_block, 2048),
    );
    let mut engine = Engine::new(
        LayerKind::Ftl,
        geometry,
        CellKind::Mlc2.spec().with_endurance(scale.endurance),
        Some(scale.swl_config(SWL_THRESHOLD, 0)),
        SwlCoordination::PerChannel,
        &SimConfig::default(),
        EngineConfig::default()
            .with_threads(options.threads)
            .with_queue_depth(options.depth)
            .with_metrics(true),
    )
    .map_err(|e| format!("engine build failed: {e}"))?;
    let pages = engine.logical_pages();
    let effective_threads = engine.threads();
    let handle = engine.metrics_handle();
    let events = options.events;
    let seed = scale.seed;

    println!(
        "engtop: FTL x{CHANNELS}ch, {CHANNEL_SPAN}-page host requests, {events} events, \
         {effective_threads} worker(s), depth {}, SWL (T={SWL_THRESHOLD}, k=0, per-channel)",
        options.depth
    );

    let mut jsonl: Vec<String> = Vec::new();
    jsonl.push(json::object(|o| {
        o.str("kind", "engtop_meta")
            .u64("schema", SCHEMA)
            .u64("channels", u64::from(CHANNELS))
            .u64("threads", u64::from(effective_threads))
            .u64("queue_depth", options.depth as u64)
            .u64("events", events)
            .u64("interval_ms", options.interval_ms);
    }));

    let driver = std::thread::spawn(move || -> Result<EngineRun, flash_sim::SimError> {
        engine.run(trace(pages, seed), StopCondition::events(events))?;
        engine.finish()
    });

    let live = std::io::stdout().is_terminal();
    let mut seq = 0u64;
    let mut last_height = 0usize;
    while !driver.is_finished() {
        let snap = handle.snapshot();
        export_sample(&mut jsonl, seq, &snap);
        let lines = frame(&snap);
        if live {
            // Refresh in place: move the cursor back over the previous frame.
            if last_height > 0 {
                print!("\x1b[{last_height}A");
            }
            for line in &lines {
                println!("\x1b[2K{line}");
            }
            last_height = lines.len();
            std::io::stdout().flush().ok();
        }
        seq += 1;
        std::thread::sleep(Duration::from_millis(options.interval_ms));
    }
    let run = driver
        .join()
        .map_err(|_| "engine driver thread panicked".to_owned())?
        .map_err(|e| format!("engine run failed: {e}"))?;
    let metrics = run.metrics.expect("metrics were enabled");
    let snap = &metrics.snapshot;

    // Final frame (printed plainly so non-TTY runs still show the summary).
    if live && last_height > 0 {
        print!("\x1b[{last_height}A");
    }
    for line in frame(snap) {
        if live {
            println!("\x1b[2K{line}");
        } else {
            println!("{line}");
        }
    }
    let q = |h: &LatencyHistogram, p: f64| h.quantile(p);
    println!(
        "done: {} samples; cmd exec p50 {} µs p99 {} µs; op wall p50 {} µs p99 {} µs",
        seq,
        q(&metrics.cmd_latency, 0.5) / 1_000,
        q(&metrics.cmd_latency, 0.99) / 1_000,
        q(&metrics.op_write_wall, 0.5) / 1_000,
        q(&metrics.op_write_wall, 0.99) / 1_000,
    );

    jsonl.push(json::object(|o| {
        o.str("kind", "final")
            .f64("t_ms", snap.elapsed_ns as f64 / 1e6, 3)
            .u64("ops_submitted", snap.ops_submitted)
            .u64("ops_completed", snap.ops_completed)
            .f64("busy_frac", snap.busy_frac(), 4)
            .f64("starved_frac", snap.starved_frac(), 4)
            .f64("backpressure_frac", snap.backpressure_frac(), 4)
            .f64("host_backpressure_ms", snap.host_backpressure_ns as f64 / 1e6, 3)
            .u64("cmd_high_water", snap.command_high_water() as u64)
            .u64("completion_high_water", snap.completion_queue.high_water as u64)
            .u64("cmd_p50_ns", q(&metrics.cmd_latency, 0.5))
            .u64("cmd_p99_ns", q(&metrics.cmd_latency, 0.99))
            .u64("op_wall_p50_ns", q(&metrics.op_write_wall, 0.5))
            .u64("op_wall_p99_ns", q(&metrics.op_write_wall, 0.99));
    }));
    if let Some(path) = &options.out {
        std::fs::write(path, jsonl.join("\n") + "\n").map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {} JSONL lines to {path}", jsonl.len());
    }
    Ok(())
}

/// The fields every line of a kind must carry as numbers.
fn required_fields(kind: &str) -> Option<&'static [&'static str]> {
    match kind {
        "engtop_meta" => Some(&[
            "schema", "channels", "threads", "queue_depth", "events", "interval_ms",
        ]),
        "sample" | "final" => Some(&[
            "t_ms",
            "ops_submitted",
            "ops_completed",
            "busy_frac",
            "starved_frac",
            "backpressure_frac",
            "host_backpressure_ms",
            "cmd_high_water",
            "completion_high_water",
        ]),
        "worker" => Some(&[
            "t_ms",
            "worker",
            "busy_frac",
            "starved_frac",
            "backpressure_frac",
            "idle_frac",
            "commands",
            "pages",
        ]),
        "lane" => Some(&["t_ms", "lane", "busy_ms", "commands", "pages"]),
        "queue" => Some(&["t_ms", "len", "high_water", "capacity"]),
        // Schema v2: the service write cache's counter block per tick.
        "cache" => Some(&[
            "t_ms",
            "write_hits",
            "read_hits",
            "admitted",
            "write_through",
            "flushed_pages",
            "flush_batches",
            "evicted",
            "trimmed",
            "dirty",
            "capacity",
        ]),
        // Schema v3: the health plane's per-tick SMART report (forecast
        // fields are optional — omitted while the forecast is unbounded).
        "health" => Some(&[
            "t_ms",
            "state",
            "life_used",
            "host_pages",
            "wear_max",
            "wear_p90",
            "wear_mean",
            "retired",
            "tail_rate",
            "mean_rate",
            "unevenness",
        ]),
        _ => None,
    }
}

fn num(fields: &[(String, JsonScalar)], key: &str) -> Option<f64> {
    fields.iter().find(|(k, _)| k == key)?.1.as_num()
}

/// Validates a JSONL export against the declared schema version. Returns
/// every violation found (empty = clean).
fn check(text: &str) -> Result<u64, Vec<String>> {
    let mut errors = Vec::new();
    let mut meta: Option<(f64, f64)> = None; // (threads, channels)
    let mut schema = SCHEMA;
    let mut last_t_ms = f64::NEG_INFINITY;
    let mut queue_high: Vec<(String, f64)> = Vec::new();
    let mut finals = 0usize;
    let mut samples = 0u64;
    let mut lines = 0usize;
    for (n, line) in text.lines().filter(|l| !l.trim().is_empty()).enumerate() {
        lines += 1;
        let fields = match json::parse_flat(line) {
            Ok(fields) => fields,
            Err(e) => {
                errors.push(format!("line {}: {e}", n + 1));
                continue;
            }
        };
        let Some(kind) = fields
            .iter()
            .find(|(k, _)| k == "kind")
            .and_then(|(_, v)| v.as_str())
            .map(str::to_owned)
        else {
            errors.push(format!("line {}: no \"kind\" field", n + 1));
            continue;
        };
        let Some(required) = required_fields(&kind) else {
            errors.push(format!("line {}: unknown kind {kind:?}", n + 1));
            continue;
        };
        let mut complete = true;
        for key in required {
            if num(&fields, key).is_none() {
                errors.push(format!("line {}: {kind} line missing numeric {key:?}", n + 1));
                complete = false;
            }
        }
        if !complete {
            continue;
        }
        if n == 0 {
            if kind != "engtop_meta" {
                errors.push("line 1: export must start with an engtop_meta line".to_owned());
            } else {
                let declared = num(&fields, "schema").unwrap_or(0.0);
                if declared < MIN_SCHEMA as f64 || declared > SCHEMA as f64 {
                    errors.push(format!(
                        "line 1: schema {declared}, this engtop speaks v{MIN_SCHEMA}..=v{SCHEMA}"
                    ));
                } else {
                    schema = declared as u64;
                }
            }
        } else if kind == "engtop_meta" {
            errors.push(format!("line {}: duplicate engtop_meta", n + 1));
        }
        match kind.as_str() {
            "engtop_meta" => {
                meta = Some((
                    num(&fields, "threads").unwrap_or(0.0),
                    num(&fields, "channels").unwrap_or(0.0),
                ));
            }
            "final" => finals += 1,
            "sample" => samples += 1,
            _ => {}
        }
        // Time must be monotone in file order; every non-meta kind carries it.
        if let Some(t_ms) = num(&fields, "t_ms") {
            if t_ms < last_t_ms {
                errors.push(format!(
                    "line {}: t_ms {t_ms} went backwards (was {last_t_ms})",
                    n + 1
                ));
            }
            last_t_ms = t_ms;
        }
        for frac in ["busy_frac", "starved_frac", "backpressure_frac", "idle_frac"] {
            if let Some(v) = num(&fields, frac) {
                if !(0.0..=1.0).contains(&v) {
                    errors.push(format!("line {}: {frac} {v} outside [0, 1]", n + 1));
                }
            }
        }
        if let Some((threads, channels)) = meta {
            if let Some(w) = num(&fields, "worker") {
                if w >= threads {
                    errors.push(format!("line {}: worker {w} >= {threads} threads", n + 1));
                }
            }
            if let Some(l) = num(&fields, "lane") {
                if l >= channels {
                    errors.push(format!("line {}: lane {l} >= {channels} channels", n + 1));
                }
            }
        }
        if kind == "queue" {
            let label = fields
                .iter()
                .find(|(k, _)| k == "queue")
                .and_then(|(_, v)| v.as_str())
                .map(str::to_owned);
            let Some(label) = label else {
                errors.push(format!("line {}: queue line missing \"queue\" label", n + 1));
                continue;
            };
            let (len, high, cap) = (
                num(&fields, "len").unwrap_or(0.0),
                num(&fields, "high_water").unwrap_or(0.0),
                num(&fields, "capacity").unwrap_or(0.0),
            );
            if len > cap {
                errors.push(format!("line {}: queue {label} len {len} > capacity {cap}", n + 1));
            }
            if high > cap {
                errors.push(format!(
                    "line {}: queue {label} high_water {high} > capacity {cap}",
                    n + 1
                ));
            }
            match queue_high.iter_mut().find(|(name, _)| *name == label) {
                Some((_, prev)) => {
                    if high < *prev {
                        errors.push(format!(
                            "line {}: queue {label} high_water {high} regressed from {prev}",
                            n + 1
                        ));
                    }
                    *prev = high;
                }
                None => queue_high.push((label, high)),
            }
        }
        if kind == "cache" {
            if schema < 2 {
                errors.push(format!(
                    "line {}: cache lines need schema v2, file declares v{schema}",
                    n + 1
                ));
            }
            let (dirty, capacity) = (
                num(&fields, "dirty").unwrap_or(0.0),
                num(&fields, "capacity").unwrap_or(0.0),
            );
            if dirty > capacity {
                errors.push(format!(
                    "line {}: cache dirty {dirty} > capacity {capacity}",
                    n + 1
                ));
            }
        }
        if kind == "health" {
            if schema < 3 {
                errors.push(format!(
                    "line {}: health lines need schema v3, file declares v{schema}",
                    n + 1
                ));
            }
            let state = num(&fields, "state").unwrap_or(0.0);
            if state > 2.0 {
                errors.push(format!("line {}: health state {state} not in 0..=2", n + 1));
            }
            if num(&fields, "life_used").unwrap_or(0.0) < 0.0 {
                errors.push(format!("line {}: negative life_used", n + 1));
            }
            let (max, p90) = (
                num(&fields, "wear_max").unwrap_or(0.0),
                num(&fields, "wear_p90").unwrap_or(0.0),
            );
            if p90 > max {
                errors.push(format!("line {}: wear_p90 {p90} > wear_max {max}", n + 1));
            }
            // The forecast band, when present, must bracket the central
            // estimate (earliest ≤ central ≤ latest).
            let band = (
                num(&fields, "forecast_earliest"),
                num(&fields, "forecast_central"),
                num(&fields, "forecast_latest"),
            );
            if let (Some(lo), Some(mid), Some(hi)) = band {
                if !(lo <= mid && mid <= hi) {
                    errors.push(format!(
                        "line {}: forecast band {lo}..{mid}..{hi} out of order",
                        n + 1
                    ));
                }
            }
        }
        if finals > 0 && kind != "final" {
            errors.push(format!("line {}: content after the final line", n + 1));
        }
    }
    if lines == 0 {
        errors.push("empty export".to_owned());
    } else if finals == 0 {
        errors.push("no final line".to_owned());
    } else if finals > 1 {
        errors.push(format!("{finals} final lines, expected exactly one"));
    }
    if errors.is_empty() {
        Ok(samples)
    } else {
        Err(errors)
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &options.check {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("engtop: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match check(&text) {
            Ok(samples) => {
                println!("engtop: OK — {samples} sample tick(s), schema v{SCHEMA}");
                ExitCode::SUCCESS
            }
            Err(errors) => {
                for error in &errors {
                    eprintln!("engtop: {error}");
                }
                ExitCode::FAILURE
            }
        };
    }
    if let Err(message) = run(&options) {
        eprintln!("engtop: {message}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::check;

    const META: &str = "{\"kind\":\"engtop_meta\",\"schema\":1,\"channels\":4,\
                        \"threads\":2,\"queue_depth\":8,\"events\":100,\"interval_ms\":50}";
    const FINAL: &str = "{\"kind\":\"final\",\"t_ms\":9.0,\"ops_submitted\":100,\
                         \"ops_completed\":100,\"busy_frac\":0.5,\"starved_frac\":0.25,\
                         \"backpressure_frac\":0.1,\"host_backpressure_ms\":1.0,\
                         \"cmd_high_water\":4,\"completion_high_water\":2,\
                         \"cmd_p50_ns\":100,\"cmd_p99_ns\":200,\
                         \"op_wall_p50_ns\":300,\"op_wall_p99_ns\":400}";

    fn sample(t_ms: f64) -> String {
        format!(
            "{{\"kind\":\"sample\",\"seq\":0,\"t_ms\":{t_ms},\"ops_submitted\":1,\
             \"ops_completed\":0,\"busy_frac\":0.1,\"starved_frac\":0.2,\
             \"backpressure_frac\":0.0,\"host_backpressure_ms\":0.0,\
             \"cmd_high_water\":1,\"completion_high_water\":1}}"
        )
    }

    #[test]
    fn accepts_a_minimal_valid_export() {
        let text = format!("{META}\n{}\n{FINAL}\n", sample(1.0));
        assert_eq!(check(&text), Ok(1));
    }

    #[test]
    fn rejects_missing_meta_and_missing_final() {
        assert!(check(&format!("{}\n{FINAL}\n", sample(1.0))).is_err());
        assert!(check(&format!("{META}\n{}\n", sample(1.0))).is_err());
        assert!(check("").is_err());
    }

    #[test]
    fn rejects_time_regression_and_bad_fractions() {
        let back = format!("{META}\n{}\n{}\n{FINAL}\n", sample(5.0), sample(1.0));
        assert!(check(&back).is_err());
        let bad = sample(1.0).replace("\"busy_frac\":0.1", "\"busy_frac\":1.5");
        assert!(check(&format!("{META}\n{bad}\n{FINAL}\n")).is_err());
    }

    #[test]
    fn rejects_queue_high_water_regression() {
        let q = |t: f64, high: u64| {
            format!(
                "{{\"kind\":\"queue\",\"seq\":0,\"t_ms\":{t},\"queue\":\"cmd0\",\
                 \"len\":0,\"high_water\":{high},\"capacity\":8}}"
            )
        };
        let ok = format!("{META}\n{}\n{}\n{FINAL}\n", q(1.0, 2), q(2.0, 3));
        assert_eq!(check(&ok), Ok(0));
        let regressed = format!("{META}\n{}\n{}\n{FINAL}\n", q(1.0, 3), q(2.0, 2));
        assert!(check(&regressed).is_err());
        let over = q(1.0, 9);
        assert!(check(&format!("{META}\n{over}\n{FINAL}\n")).is_err());
    }

    fn cache(t_ms: f64, dirty: u64, capacity: u64) -> String {
        format!(
            "{{\"kind\":\"cache\",\"seq\":0,\"t_ms\":{t_ms},\"write_hits\":5,\
             \"read_hits\":2,\"admitted\":3,\"write_through\":1,\"flushed_pages\":4,\
             \"flush_batches\":2,\"evicted\":0,\"trimmed\":0,\
             \"dirty\":{dirty},\"capacity\":{capacity}}}"
        )
    }

    #[test]
    fn cache_lines_need_schema_v2() {
        let meta_v2 = META.replace("\"schema\":1", "\"schema\":2");
        let ok = format!("{meta_v2}\n{}\n{FINAL}\n", cache(1.0, 3, 8));
        assert_eq!(check(&ok), Ok(0));
        let v1 = format!("{META}\n{}\n{FINAL}\n", cache(1.0, 3, 8));
        assert!(check(&v1).is_err(), "cache lines are not part of schema v1");
    }

    #[test]
    fn rejects_cache_dirty_over_capacity_and_future_schema() {
        let meta_v2 = META.replace("\"schema\":1", "\"schema\":2");
        let over = format!("{meta_v2}\n{}\n{FINAL}\n", cache(1.0, 9, 8));
        assert!(check(&over).is_err());
        let future = META.replace("\"schema\":1", "\"schema\":4");
        assert!(check(&format!("{future}\n{FINAL}\n")).is_err());
    }

    fn health(t_ms: f64, state: u64, p90: u64, max: u64, band: Option<(u64, u64, u64)>) -> String {
        let forecast = band.map_or(String::new(), |(lo, mid, hi)| {
            format!(
                ",\"forecast_earliest\":{lo},\"forecast_central\":{mid},\
                 \"forecast_latest\":{hi}"
            )
        });
        format!(
            "{{\"kind\":\"health\",\"seq\":0,\"t_ms\":{t_ms},\"state\":{state},\
             \"life_used\":0.25,\"host_pages\":100,\"wear_max\":{max},\
             \"wear_p90\":{p90},\"wear_mean\":3.5,\"retired\":0,\
             \"tail_rate\":0.01,\"mean_rate\":0.008,\"unevenness\":1.2{forecast}}}"
        )
    }

    #[test]
    fn health_lines_need_schema_v3() {
        let meta_v3 = META.replace("\"schema\":1", "\"schema\":3");
        let ok = format!("{meta_v3}\n{}\n{FINAL}\n", health(1.0, 1, 4, 6, None));
        assert_eq!(check(&ok), Ok(0));
        let v2 = META.replace("\"schema\":1", "\"schema\":2");
        let rejected = format!("{v2}\n{}\n{FINAL}\n", health(1.0, 1, 4, 6, None));
        assert!(check(&rejected).is_err(), "health lines are not part of schema v2");
    }

    #[test]
    fn rejects_bad_health_state_tail_and_band() {
        let meta_v3 = META.replace("\"schema\":1", "\"schema\":3");
        let bad_state = format!("{meta_v3}\n{}\n{FINAL}\n", health(1.0, 5, 4, 6, None));
        assert!(check(&bad_state).is_err());
        let bad_tail = format!("{meta_v3}\n{}\n{FINAL}\n", health(1.0, 0, 9, 6, None));
        assert!(check(&bad_tail).is_err());
        let good_band = format!(
            "{meta_v3}\n{}\n{FINAL}\n",
            health(1.0, 0, 4, 6, Some((50, 80, 120)))
        );
        assert_eq!(check(&good_band), Ok(0));
        let bad_band = format!(
            "{meta_v3}\n{}\n{FINAL}\n",
            health(1.0, 0, 4, 6, Some((80, 50, 120)))
        );
        assert!(check(&bad_band).is_err());
    }

    #[test]
    fn rejects_unknown_kinds_and_out_of_range_indices() {
        let unknown = "{\"kind\":\"mystery\",\"t_ms\":1.0}";
        assert!(check(&format!("{META}\n{unknown}\n{FINAL}\n")).is_err());
        let worker = "{\"kind\":\"worker\",\"t_ms\":1.0,\"worker\":7,\"busy_frac\":0.1,\
                      \"starved_frac\":0.1,\"backpressure_frac\":0.1,\"idle_frac\":0.7,\
                      \"commands\":1,\"pages\":1}";
        assert!(check(&format!("{META}\n{worker}\n{FINAL}\n")).is_err());
    }
}
