//! Extension study: host write-latency distribution under static wear
//! leveling.
//!
//! The paper bounds SWL's overhead in *totals* (extra erases, extra
//! copies). The other currency firmware pays in is **tail latency**: a
//! synchronous SWL-Procedure pass runs whole block sets through garbage
//! collection underneath one unlucky host write. This binary compares the
//! device-time latency distribution of host writes with and without the
//! leveler, for both translation layers.
//!
//! Usage: `latency [quick|scaled|paper]`

use flash_bench::{default_horizon_ns, print_table, scale_from_args};
use flash_sim::experiments::horizon_run;
use flash_sim::LayerKind;

fn main() {
    let scale = scale_from_args();
    // A shorter horizon than the endurance studies: latency distributions
    // stabilise quickly.
    let horizon = default_horizon_ns(&scale) / 8;
    println!(
        "Host write latency under static wear leveling\n\
         (scale: {} blocks x {} pages, endurance {}; horizon {:.3} y)\n",
        scale.blocks,
        scale.pages_per_block,
        scale.endurance,
        horizon as f64 / flash_sim::experiments::NANOS_PER_YEAR
    );

    let mut rows = Vec::new();
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        for (label, swl) in [
            ("baseline", None),
            ("+SWL T=100 k=0", Some(scale.swl_config(100, 0))),
            ("+SWL T=100 k=3", Some(scale.swl_config(100, 3))),
            ("+SWL T=1000 k=0", Some(scale.swl_config(1000, 0))),
        ] {
            let report = horizon_run(kind, swl, &scale, horizon).expect("simulation runs");
            let lat = &report.write_latency;
            rows.push(vec![
                format!("{kind} {label}"),
                format!("{:.0}", lat.mean_ns() as f64 / 1e3),
                format!("{:.0}", lat.quantile(0.5) as f64 / 1e3),
                format!("{:.0}", lat.quantile(0.99) as f64 / 1e3),
                format!("{:.0}", lat.quantile(0.999) as f64 / 1e3),
                format!("{:.0}", lat.max_ns() as f64 / 1e3),
            ]);
        }
    }
    print_table(
        &[
            "configuration",
            "mean µs",
            "p50 µs",
            "p99 µs",
            "p99.9 µs",
            "max µs",
        ],
        &rows,
    );
    println!(
        "\nexpected: medians barely move (SWL is off the common path); the\n\
         extreme tail grows — one write absorbs a whole leveling pass.\n\
         Larger T and k trigger leveling less often but each pass moves\n\
         more data, trading tail frequency for tail depth. Real firmware\n\
         amortises this by running SWL from an idle-time timer, which the\n\
         library supports via run_swl()."
    );
}
