//! Extension study: host write-latency distribution under static wear
//! leveling.
//!
//! The paper bounds SWL's overhead in *totals* (extra erases, extra
//! copies). The other currency firmware pays in is **tail latency**: a
//! synchronous SWL-Procedure pass runs whole block sets through garbage
//! collection underneath one unlucky host write. This binary compares the
//! device-time latency distribution of host writes with and without the
//! leveler, for both translation layers, and — via the causal span layer —
//! attributes the write time to its causes: the host's own program, GC,
//! SWL passes, and (for the NFTL) merges.
//!
//! Usage: `latency [quick|scaled|paper]`

use flash_bench::{default_horizon_ns, print_table, scale_from_args};
use flash_sim::experiments::attributed_horizon_run;
use flash_sim::LayerKind;
use flash_telemetry::SpanCause;
use nand::Timing;

fn main() {
    let scale = scale_from_args();
    // A shorter horizon than the endurance studies: latency distributions
    // stabilise quickly.
    let horizon = default_horizon_ns(&scale) / 8;
    // The device-timing table the latencies below are built from — the same
    // exported constants the chip's busy-time model uses.
    let t = Timing::MLC2;
    println!(
        "Host write latency under static wear leveling\n\
         (scale: {} blocks x {} pages, endurance {}; horizon {:.3} y)\n\
         (MLC×2 device timing: read {} µs, program {} µs, erase {} µs)\n",
        scale.blocks,
        scale.pages_per_block,
        scale.endurance,
        horizon as f64 / flash_sim::experiments::NANOS_PER_YEAR,
        t.read_ns as f64 / 1e3,
        t.program_ns as f64 / 1e3,
        t.erase_ns as f64 / 1e3,
    );

    let mut rows = Vec::new();
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        for (label, swl) in [
            ("baseline", None),
            ("+SWL T=100 k=0", Some(scale.swl_config(100, 0))),
            ("+SWL T=100 k=3", Some(scale.swl_config(100, 3))),
            ("+SWL T=1000 k=0", Some(scale.swl_config(1000, 0))),
        ] {
            let (report, metrics) =
                attributed_horizon_run(kind, swl, &scale, horizon).expect("simulation runs");
            let lat = &report.write_latency;
            let share = |cause: SpanCause| {
                let total = lat.total_ns() + report.read_latency.total_ns();
                if total == 0 {
                    0.0
                } else {
                    100.0 * metrics.cause_latency(cause).total_ns() as f64 / total as f64
                }
            };
            rows.push(vec![
                format!("{kind} {label}"),
                format!("{:.0}", lat.mean_ns() / 1e3),
                format!("{:.0}", lat.quantile(0.5) as f64 / 1e3),
                format!("{:.0}", lat.quantile(0.99) as f64 / 1e3),
                format!("{:.0}", lat.quantile(0.999) as f64 / 1e3),
                format!("{:.0}", lat.max_ns() as f64 / 1e3),
                format!("{:.2}", metrics.write_amplification()),
                format!("{:.1}", share(SpanCause::Gc)),
                format!("{:.1}", share(SpanCause::Swl)),
                format!("{:.1}", share(SpanCause::Merge)),
            ]);
        }
    }
    print_table(
        &[
            "configuration",
            "mean µs",
            "p50 µs",
            "p99 µs",
            "p99.9 µs",
            "max µs",
            "WA",
            "gc %",
            "swl %",
            "merge %",
        ],
        &rows,
    );
    println!(
        "\nexpected: medians barely move (SWL is off the common path); the\n\
         extreme tail grows — one write absorbs a whole leveling pass. The\n\
         cause columns attribute total host-op device time: GC dominates\n\
         overhead, SWL adds a small slice (charged to merges on the NFTL).\n\
         Larger T and k trigger leveling less often but each pass moves\n\
         more data, trading tail frequency for tail depth. Real firmware\n\
         amortises this by running SWL from an idle-time timer, which the\n\
         library supports via run_swl()."
    );
}
