//! `healthbench` — the health plane's honesty gate: drives endurance-
//! limited runs to **actual first block failure** and scores the forecast
//! against reality, instead of trusting the model's own math.
//!
//! Two arms, both at the quick geometry (4-channel FTL + per-channel SWL,
//! cache-off service so every host page reaches flash):
//!
//! - **rated** — every block honours its rated endurance exactly (the
//!   assumption the forecast is built on). The forecast taken nearest 50 %
//!   of the device's realized life must predict the failure point within
//!   [`HALF_LIFE_ERROR_BOUND`].
//! - **faulty** — fault injection gives every block a private endurance
//!   drawn below the rating ([`FaultPlan::with_endurance_range`]), so
//!   blocks die *earlier* than the health plane believes. The forecast is
//!   structurally optimistic here; the gate allows [`FAULT_SLACK`] extra
//!   error and the run documents how far reality diverged.
//!
//! Reports are taken every [`DEFAULT_RECORD_EVERY`] accepted ops at a
//! durability barrier (`flush()` before `stats()`), so each arm's error
//! figure is deterministic and the gate cannot flake: barrier-free
//! polling samples the shared atomics mid-flight, and which wear table a
//! record happens to see moves the scored forecast by double-digit
//! percents run to run. (Barrier-free polling itself is exercised — and
//! pinned harmless to the run's outcome — by `tests/service_oracle.rs`.)
//! The JSON summary lands in
//! `BENCH_health.json`; any gate miss exits non-zero. The rated arm must
//! also end in the `critical` state — a device at first failure that still
//! reports otherwise would make the state ladder a lie.
//!
//! Usage: `healthbench [--endurance N] [--record-every N]`
//!
//! [`FaultPlan::with_endurance_range`]: nand::FaultPlan::with_endurance_range

use std::process::ExitCode;

use flash_bench::json;
use flash_sim::experiments::ExperimentScale;
use flash_sim::service::{Service, ServiceConfig};
use flash_sim::{EngineConfig, LayerKind, SimConfig, SwlCoordination};
use flash_telemetry::health::{HealthReport, HALF_LIFE_ERROR_BOUND};
use nand::{CellKind, ChannelGeometry, FaultPlan, Geometry};
use swl_core::rng::SplitMix64;
use swl_core::SwlConfig;

const CHANNELS: u32 = 4;
const SWL_THRESHOLD: u64 = 100;
/// Rated per-block endurance of both arms (low: failure in seconds).
const DEFAULT_ENDURANCE: u32 = 24;
/// Ops between forecast records.
const DEFAULT_RECORD_EVERY: u64 = 200;
/// Extra error the faulty arm is allowed: its blocks die up to 25 % before
/// the rating the forecast assumes, so the forecast overshoots by
/// construction. The slack equals that injected shortfall.
const FAULT_SLACK: f64 = 0.25;
/// Faulty arm: private block endurances drawn uniformly from
/// `[3/4 * rated, rated]`.
const FAULT_LO_FRAC: f64 = 0.75;

/// One mid-run forecast record.
struct Record {
    host_pages: u64,
    central: Option<u64>,
    earliest: Option<u64>,
    latest: Option<u64>,
}

struct Arm {
    name: &'static str,
    fault_range: Option<(u64, u64)>,
    records: Vec<Record>,
    /// Host pages on flash when the first block died.
    total_pages: u64,
    final_report: HealthReport,
}

fn args_value(flag: &str) -> Option<u64> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == flag {
            let value = args.next().unwrap_or_else(|| panic!("{flag} needs a number"));
            return Some(value.parse().unwrap_or_else(|_| panic!("{flag} needs a number")));
        }
    }
    None
}

/// Same hot-biased single-client write stream as `swlhealth`: 40 % logical
/// footprint, 90 % of writes inside the hot eighth, 1–4 pages each.
struct Workload {
    rng: SplitMix64,
    span: u64,
    hot_set: u64,
    next_value: u64,
}

impl Workload {
    fn new(logical_pages: u64, seed: u64) -> Self {
        let span = (logical_pages * 2 / 5).max(8);
        Self {
            rng: SplitMix64::new(seed ^ 0x5EA1),
            span,
            hot_set: (span / 8).max(4).min(span),
            next_value: 0,
        }
    }

    fn next(&mut self) -> (u64, Vec<u64>) {
        let len = self.rng.range_usize(1..5).min(self.span as usize);
        let lba = if self.rng.chance(0.9) {
            self.rng.next_below(self.hot_set)
        } else {
            self.rng.next_below(self.span)
        }
        .min(self.span - len as u64);
        let data = (0..len)
            .map(|_| {
                self.next_value += 1;
                self.next_value
            })
            .collect();
        (lba, data)
    }
}

/// Drives one arm to first failure, recording the forecast as it goes.
fn run_arm(
    name: &'static str,
    endurance: u32,
    fault_range: Option<(u64, u64)>,
    record_every: u64,
) -> Arm {
    let scale = ExperimentScale::quick();
    let geometry = ChannelGeometry::new(
        CHANNELS,
        1,
        Geometry::new(scale.blocks / CHANNELS, scale.pages_per_block, 2048),
    );
    let mut sim = SimConfig::default();
    if let Some((lo, hi)) = fault_range {
        sim.fault = Some(FaultPlan::new(scale.seed).with_endurance_range(lo, hi));
    }
    let mut service = Service::build(
        LayerKind::Ftl,
        geometry,
        CellKind::Mlc2.spec().with_endurance(endurance),
        Some(SwlConfig::new(SWL_THRESHOLD, 0).with_seed(scale.seed)),
        SwlCoordination::PerChannel,
        &sim,
        ServiceConfig::default().with_engine(
            EngineConfig::default()
                .with_threads(CHANNELS)
                .with_queue_depth(8)
                .with_health(true),
        ),
    )
    .expect("service build failed");
    let mut workload = Workload::new(service.logical_pages(), scale.seed);
    let runtime = service.health_runtime().expect("health was enabled");
    let mut records = Vec::new();
    let mut ops = 0u64;
    // First block death, whichever way it comes: organic wear-out at the
    // rating (rated arm), or a fault-injected erase failure retiring the
    // block below it (faulty arm — the rated wear-out record never fires
    // there, the block is grown-bad first).
    while service.first_failure().is_none() && runtime.sample().retired == 0 {
        let (lba, data) = workload.next();
        service.write(lba, &data).expect("write failed");
        ops += 1;
        if ops.is_multiple_of(record_every) {
            // Quiesce so the record (and the scored error) is deterministic.
            service.flush().expect("record flush failed");
            let report = service.stats().expect("health was enabled");
            records.push(Record {
                host_pages: report.host_pages,
                central: report.forecast.central,
                earliest: report.forecast.earliest,
                latest: report.forecast.latest,
            });
        }
    }
    // Quiesce so the final sample counts every page that reached flash.
    service.flush().expect("post-failure flush failed");
    let final_report = service.stats().expect("health was enabled");
    let total_pages = final_report.host_pages;
    service.finish().expect("service finish failed");
    println!(
        "{name}: first block death after {ops} ops / {total_pages} host pages \
         ({} records, final state {}, life {:.2})",
        records.len(),
        final_report.state.token(),
        final_report.life_used,
    );
    Arm {
        name,
        fault_range,
        records,
        total_pages,
        final_report,
    }
}

/// The record nearest 50 % of the arm's realized life that carried a
/// bounded central forecast.
fn record_at_half(arm: &Arm) -> &Record {
    let half = arm.total_pages / 2;
    arm.records
        .iter()
        .filter(|r| r.central.is_some())
        .min_by_key(|r| r.host_pages.abs_diff(half))
        .expect("a failing run produces bounded forecasts")
}

/// Relative error of the half-life forecast against the realized failure.
fn half_life_error(arm: &Arm) -> f64 {
    let at = record_at_half(arm);
    let predicted = at.host_pages + at.central.expect("record filtered on Some");
    (predicted as f64 - arm.total_pages as f64).abs() / arm.total_pages.max(1) as f64
}

fn main() -> ExitCode {
    let endurance = args_value("--endurance").unwrap_or(u64::from(DEFAULT_ENDURANCE)) as u32;
    let record_every = args_value("--record-every")
        .unwrap_or(DEFAULT_RECORD_EVERY)
        .max(1);
    let fault_lo = ((f64::from(endurance) * FAULT_LO_FRAC).floor() as u64).max(1);
    println!(
        "healthbench: quick geometry, FTL x{CHANNELS}ch, rated endurance {endurance}, \
         faulty arm draws {fault_lo}..={endurance}, record every {record_every} ops"
    );

    let rated = run_arm("rated", endurance, None, record_every);
    let faulty = run_arm(
        "faulty",
        endurance,
        Some((fault_lo, u64::from(endurance))),
        record_every,
    );

    let mut pass = true;
    let mut failures: Vec<String> = Vec::new();
    let arms = [(&rated, HALF_LIFE_ERROR_BOUND), (&faulty, HALF_LIFE_ERROR_BOUND + FAULT_SLACK)];
    for (arm, bound) in &arms {
        let at = record_at_half(arm);
        let error = half_life_error(arm);
        let central = at.central.expect("record filtered on Some");
        println!(
            "{}: at {} pages forecast {} more (band {}..{}), reality {} more — \
             error {:.1}% (bound {:.0}%)",
            arm.name,
            at.host_pages,
            central,
            at.earliest.unwrap_or(0),
            at.latest.unwrap_or(0),
            arm.total_pages - at.host_pages.min(arm.total_pages),
            error * 100.0,
            bound * 100.0,
        );
        if error > *bound {
            pass = false;
            failures.push(format!(
                "healthbench: {} half-life forecast error {:.1}% exceeds the {:.0}% bound",
                arm.name,
                error * 100.0,
                bound * 100.0
            ));
        }
    }
    if rated.final_report.state.code() != 2 {
        pass = false;
        failures.push(format!(
            "healthbench: rated arm ended {} at first failure, expected critical",
            rated.final_report.state.token()
        ));
    }

    let json_text = json::object(|o| {
        o.str("bench", "health_forecast")
            .str("geometry", "quick")
            .u64("channels", u64::from(CHANNELS))
            .u64("endurance", u64::from(endurance))
            .u64("record_every", record_every)
            .f64("half_life_error_bound", HALF_LIFE_ERROR_BOUND, 4)
            .f64("fault_slack", FAULT_SLACK, 4)
            .bool("pass", pass)
            .arr("arms", |a| {
                for (arm, bound) in &arms {
                    let at = record_at_half(arm);
                    let central = at.central.expect("record filtered on Some");
                    let predicted = at.host_pages + central;
                    a.obj(|row| {
                        row.str("name", arm.name)
                            .u64("host_pages_to_failure", arm.total_pages)
                            .u64("records", arm.records.len() as u64)
                            .u64("forecast_at_pages", at.host_pages)
                            .u64("forecast_central", central)
                            .u64("forecast_earliest", at.earliest.unwrap_or(0))
                            .u64("forecast_latest", at.latest.unwrap_or(0))
                            .u64("predicted_total", predicted)
                            .f64("error_frac", half_life_error(arm), 4)
                            .f64("error_bound", *bound, 4)
                            .bool(
                                "band_brackets_reality",
                                at.earliest.zip(at.latest).is_some_and(|(lo, hi)| {
                                    (at.host_pages + lo..=at.host_pages + hi)
                                        .contains(&arm.total_pages)
                                }),
                            )
                            .str("final_state", arm.final_report.state.token())
                            .f64("final_life_used", arm.final_report.life_used, 4)
                            .u64("retired", arm.final_report.retired);
                        if let Some((lo, hi)) = arm.fault_range {
                            row.u64("fault_endurance_lo", lo).u64("fault_endurance_hi", hi);
                        }
                    });
                }
            });
    });
    std::fs::write("BENCH_health.json", json_text + "\n").expect("write BENCH_health.json");
    println!("wrote BENCH_health.json");
    for failure in &failures {
        eprintln!("{failure}");
    }
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
