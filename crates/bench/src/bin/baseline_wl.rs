//! Comparison study: BET-based static wear leveling vs the full
//! erase-count-table ("counting") wear leveler.
//!
//! The paper's central argument for the BET is *memory*: one bit per 2^k
//! blocks instead of a counter per block. The natural question is what the
//! extra RAM would buy. This binary levels the same workload three ways —
//! no static WL, the paper's SW Leveler, and a counting leveler that
//! force-recycles the least-worn block whenever `max − min` erase counts
//! exceed a margin — and reports first-failure time, wear spread, overhead
//! and controller RAM side by side.
//!
//! Usage: `baseline_wl [quick|scaled|paper]`

use flash_bench::{print_table, scale_from_args};
use flash_sim::experiments::{counting_wl_run, first_failure_run};
use flash_sim::LayerKind;
use swl_core::counting::CountingLeveler;
use swl_core::Bet;

fn main() {
    let scale = scale_from_args();
    println!(
        "Static wear leveling: BET (paper) vs full counting table\n\
         (scale: {} blocks x {} pages, endurance {})\n",
        scale.blocks, scale.pages_per_block, scale.endurance
    );

    let bet_ram = Bet::new(scale.blocks, 0).ram_bytes();
    let counting_ram = CountingLeveler::new(scale.blocks, 2).ram_bytes();
    // Margins roughly matching the SWL trigger aggressiveness at this scale.
    let margin_tight = (scale.endurance / 64).max(2);
    let margin_loose = (scale.endurance / 8).max(4);

    let mut rows = Vec::new();
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        let base = first_failure_run(kind, None, &scale).expect("baseline runs");
        rows.push(vec![
            format!("{kind} baseline"),
            format!("{:.4}", base.first_failure.unwrap().years()),
            format!("{:.1}", base.erase_stats.std_dev),
            format!(
                "{:.2}",
                base.counters.total_live_copies() as f64 / base.counters.host_writes.max(1) as f64
            ),
            "0 B".to_owned(),
        ]);

        let swl =
            first_failure_run(kind, Some(scale.swl_config(100, 0)), &scale).expect("+SWL runs");
        rows.push(vec![
            format!("{kind} +SWL (BET, T=100, k=0)"),
            format!("{:.4}", swl.first_failure.unwrap().years()),
            format!("{:.1}", swl.erase_stats.std_dev),
            format!(
                "{:.2}",
                swl.counters.total_live_copies() as f64 / swl.counters.host_writes.max(1) as f64
            ),
            format!("{bet_ram} B"),
        ]);

        for (label, margin) in [("tight", margin_tight), ("loose", margin_loose)] {
            let counting = counting_wl_run(kind, margin, 1000, &scale).expect("counting-WL runs");
            rows.push(vec![
                format!("{kind} +counting ({label}, d={margin})"),
                counting
                    .first_failure
                    .map(|f| format!("{:.4}", f.years()))
                    .unwrap_or_else(|| "-".into()),
                format!("{:.1}", counting.erase_stats.std_dev),
                format!(
                    "{:.2}",
                    counting.counters.total_live_copies() as f64
                        / counting.counters.host_writes.max(1) as f64
                ),
                format!("{counting_ram} B"),
            ]);
        }
    }
    print_table(
        &[
            "configuration",
            "first failure (y)",
            "erase dev",
            "copies/write",
            "WL RAM",
        ],
        &rows,
    );
    println!(
        "\nthe paper's point in numbers: the BET reaches comparable leveling\n\
         with {}x less controller RAM ({} B vs {} B at k=0; k=3 shrinks it\n\
         another 8x).",
        counting_ram / bet_ram.max(1),
        bet_ram,
        counting_ram
    );
}
