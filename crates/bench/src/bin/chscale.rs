//! `chscale` — the channel-scaling experiment: the same total capacity,
//! workload, and SWL configuration served by 1, 2, and 4 channels, printed
//! as a throughput / overlap table. The page-granular paper workload is
//! widened to [`flash_sim::experiments::CHANNEL_SPAN`]-page host requests
//! so each op stripes across the lanes; the virtual-time scheduler then
//! reports how much busy time the channels overlap and what that buys in
//! served pages per device millisecond.
//!
//! Usage: `chscale [quick|scaled|paper] [--events N]`

use flash_bench::{print_table, scale_from_args};
use flash_sim::experiments::{channel_scaling, CHANNEL_SPAN};
use flash_sim::LayerKind;

/// The lane counts the sweep visits (all divide every preset's block count).
const CHANNELS: [u32; 3] = [1, 2, 4];

fn events_from_args(default: u64) -> u64 {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--events" {
            let value = args.next().expect("--events needs a number");
            return value.parse().expect("--events needs a number");
        }
    }
    default
}

fn main() {
    let scale = scale_from_args();
    let events = events_from_args(6_000);
    println!(
        "channel scaling: FTL, {}-page host requests, {} events, \
         {} blocks x {} pages total, endurance {}, SWL (T=100, k=0, global)",
        CHANNEL_SPAN, events, scale.blocks, scale.pages_per_block, scale.endurance
    );

    let points = channel_scaling(LayerKind::Ftl, &scale, &CHANNELS, Some((100, 0)), events)
        .expect("simulation failed");

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.channels.to_string(),
                format!("{:.3}", p.makespan_ns as f64 / 1e6),
                match p.overlap {
                    Some(overlap) => format!("x{overlap:.2}"),
                    None => "n/a".to_string(),
                },
                format!("{:.1}", p.pages_per_ms),
                format!("{:.1}", p.report.op_write_latency.mean_ns() / 1e3),
                format!("{:.1}", p.report.op_read_latency.mean_ns() / 1e3),
                p.report.counters.swl_erases.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "channels",
            "makespan ms",
            "overlap",
            "pages/ms",
            "write µs",
            "read µs",
            "swl erases",
        ],
        &rows,
    );

    // An empty trace (e.g. `--events 0`, or a horizon before the first
    // request) records no device time anywhere: report that plainly and
    // exit instead of asserting on measurements that were never taken.
    if points.iter().all(|p| p.makespan_ns == 0) {
        println!(
            "\nno device time recorded (empty trace?) — \
             no overlap or throughput to compare"
        );
        return;
    }

    // The single-channel row anchors the comparison: it must be fully
    // serial, and adding channels must never slow the array down.
    let one = &points[0];
    let one_overlap = one.overlap.expect("non-empty run records device time");
    assert!(
        (one_overlap - 1.0).abs() < 1e-9,
        "one channel must be serial, got x{one_overlap:.3}"
    );
    for pair in points.windows(2) {
        assert!(
            pair[1].pages_per_ms >= pair[0].pages_per_ms,
            "throughput regressed from {} to {} channels",
            pair[0].channels,
            pair[1].channels
        );
    }
    let last = points.last().expect("sweep is non-empty");
    println!(
        "\n{} channels serve x{:.2} the single-channel throughput",
        last.channels,
        last.pages_per_ms / one.pages_per_ms
    );
}
