//! `chscale` — the channel-scaling experiment: the same total capacity,
//! workload, and SWL configuration served by 1, 2, and 4 channels, printed
//! as a throughput / overlap table. The page-granular paper workload is
//! widened to [`flash_sim::experiments::CHANNEL_SPAN`]-page host requests
//! so each op stripes across the lanes; the virtual-time scheduler then
//! reports how much busy time the channels overlap and what that buys in
//! served pages per device millisecond.
//!
//! A second, wall-clock section replays the sweep through the threaded
//! [`flash_sim::Engine`] (one worker per lane, per-channel SWL so the
//! pipelined path is exercised, metrics enabled) and attributes where the
//! worker seconds went — busy, starved on the command queue, or
//! backpressured on completions — plus per-lane busy shares and queue
//! high-water marks. Each engine run is verified bit-identical against its
//! virtual-time oracle before its numbers are reported. Both sections land
//! in `BENCH_channels.json` via the shared [`flash_bench::json`] writer.
//!
//! Usage: `chscale [quick|scaled|paper] [--events N]`

use std::time::Instant;

use flash_bench::{json, print_table, scale_from_args};
use flash_sim::experiments::{channel_scaling, ExperimentScale, CHANNEL_SPAN};
use flash_sim::{
    Engine, EngineConfig, LayerKind, SimConfig, Simulator, StopCondition, StripedLayer,
    SwlCoordination,
};
use flash_telemetry::EngineMetricsReport;
use flash_trace::{SyntheticTrace, WorkloadSpec};
use nand::{CellKind, ChannelGeometry, Geometry};

/// The lane counts the sweep visits (all divide every preset's block count).
const CHANNELS: [u32; 3] = [1, 2, 4];
/// Host queue depth for the wall-clock engine pass: deep enough that the
/// front-end is not the bottleneck and lane overlap is what gets measured.
const ENGINE_DEPTH: usize = 64;

fn events_from_args(default: u64) -> u64 {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--events" {
            let value = args.next().expect("--events needs a number");
            return value.parse().expect("--events needs a number");
        }
    }
    default
}

/// One wall-clock engine run at `channels` lanes, verified against the
/// virtual-time oracle of the identical configuration.
struct EnginePoint {
    channels: u32,
    wall_s: f64,
    metrics: EngineMetricsReport,
}

fn engine_point(scale: &ExperimentScale, channels: u32, events: u64) -> EnginePoint {
    let geometry = || {
        ChannelGeometry::new(
            channels,
            1,
            Geometry::new(scale.blocks / channels, scale.pages_per_block, 2048),
        )
    };
    let spec = CellKind::Mlc2.spec().with_endurance(scale.endurance);
    let swl = Some(scale.swl_config(100, 0));
    let trace = |pages: u64| {
        SyntheticTrace::new(WorkloadSpec::paper(pages).with_seed(scale.seed))
            .map(move |e| e.widen(CHANNEL_SPAN, pages))
    };

    let mut oracle = StripedLayer::build(
        LayerKind::Ftl,
        geometry(),
        spec,
        swl,
        SwlCoordination::PerChannel,
        &SimConfig::default(),
    )
    .expect("oracle build failed");
    let pages = oracle.logical_pages();
    let reference = Simulator::new()
        .run_striped(&mut oracle, trace(pages), StopCondition::events(events))
        .expect("oracle run failed");

    let mut engine = Engine::new(
        LayerKind::Ftl,
        geometry(),
        spec,
        swl,
        SwlCoordination::PerChannel,
        &SimConfig::default(),
        EngineConfig::default()
            .with_threads(channels)
            .with_queue_depth(ENGINE_DEPTH)
            .with_metrics(true),
    )
    .expect("engine build failed");
    let start = Instant::now();
    engine
        .run(trace(pages), StopCondition::events(events))
        .expect("engine run failed");
    let run = engine.finish().expect("engine finish failed");
    let wall_s = start.elapsed().as_secs_f64();
    assert_eq!(
        run.report, reference,
        "{channels} channels: engine diverged from the virtual-time oracle"
    );
    EnginePoint {
        channels,
        wall_s,
        metrics: run.metrics.expect("metrics were enabled"),
    }
}

fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

fn main() {
    let scale = scale_from_args();
    let events = events_from_args(6_000);
    println!(
        "channel scaling: FTL, {}-page host requests, {} events, \
         {} blocks x {} pages total, endurance {}, SWL (T=100, k=0, global)",
        CHANNEL_SPAN, events, scale.blocks, scale.pages_per_block, scale.endurance
    );

    let points = channel_scaling(LayerKind::Ftl, &scale, &CHANNELS, Some((100, 0)), events)
        .expect("simulation failed");

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.channels.to_string(),
                format!("{:.3}", p.makespan_ns as f64 / 1e6),
                match p.overlap {
                    Some(overlap) => format!("x{overlap:.2}"),
                    None => "n/a".to_string(),
                },
                format!("{:.1}", p.pages_per_ms),
                format!("{:.1}", p.report.op_write_latency.mean_ns() / 1e3),
                format!("{:.1}", p.report.op_read_latency.mean_ns() / 1e3),
                p.report.counters.swl_erases.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "channels",
            "makespan ms",
            "overlap",
            "pages/ms",
            "write µs",
            "read µs",
            "swl erases",
        ],
        &rows,
    );

    // An empty trace (e.g. `--events 0`, or a horizon before the first
    // request) records no device time anywhere: report that plainly and
    // exit instead of asserting on measurements that were never taken.
    if points.iter().all(|p| p.makespan_ns == 0) {
        println!(
            "\nno device time recorded (empty trace?) — \
             no overlap or throughput to compare"
        );
        return;
    }

    // The single-channel row anchors the comparison: it must be fully
    // serial, and adding channels must never slow the array down.
    let one = &points[0];
    let one_overlap = one.overlap.expect("non-empty run records device time");
    assert!(
        (one_overlap - 1.0).abs() < 1e-9,
        "one channel must be serial, got x{one_overlap:.3}"
    );
    for pair in points.windows(2) {
        assert!(
            pair[1].pages_per_ms >= pair[0].pages_per_ms,
            "throughput regressed from {} to {} channels",
            pair[0].channels,
            pair[1].channels
        );
    }
    let last = points.last().expect("sweep is non-empty");
    println!(
        "\n{} channels serve x{:.2} the single-channel throughput",
        last.channels,
        last.pages_per_ms / one.pages_per_ms
    );

    // Wall-clock pass: the same lane counts through the threaded engine
    // (per-channel SWL, one worker per lane, metrics on), each verified
    // bit-identical to its virtual-time oracle.
    println!(
        "\nwall-clock engine pass (1 worker/lane, depth {ENGINE_DEPTH}, \
         per-channel SWL, metrics on):"
    );
    let engine_points: Vec<EnginePoint> = CHANNELS
        .iter()
        .map(|&c| engine_point(&scale, c, events))
        .collect();
    let engine_rows: Vec<Vec<String>> = engine_points
        .iter()
        .map(|p| {
            let snap = &p.metrics.snapshot;
            let lane_busy: u64 = snap.lanes.iter().map(|l| l.busy_wall_ns).sum();
            let lane_share = snap
                .lanes
                .iter()
                .map(|l| {
                    if lane_busy == 0 {
                        "0".to_string()
                    } else {
                        format!("{:.0}", 100.0 * l.busy_wall_ns as f64 / lane_busy as f64)
                    }
                })
                .collect::<Vec<_>>()
                .join("/");
            vec![
                p.channels.to_string(),
                format!("{:.3}", p.wall_s),
                pct(snap.busy_frac()),
                pct(snap.starved_frac()),
                pct(snap.backpressure_frac()),
                lane_share,
                snap.command_high_water().to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "channels", "wall s", "busy", "starv", "bp", "lane busy %", "cmd hw",
        ],
        &engine_rows,
    );
    println!("all engine runs bit-identical to their virtual-time oracles");

    let json = json::object(|o| {
        o.str("bench", "channel_scaling")
            .str("layer", "ftl")
            .u64("events", events)
            .u64("blocks", u64::from(scale.blocks))
            .u64("pages_per_block", u64::from(scale.pages_per_block))
            .u64("endurance", u64::from(scale.endurance))
            .bool("bit_identical", true)
            .arr("virtual_points", |a| {
                for p in &points {
                    a.obj(|row| {
                        row.u64("channels", u64::from(p.channels))
                            .f64("makespan_ms", p.makespan_ns as f64 / 1e6, 3)
                            .f64("overlap", p.overlap.unwrap_or(f64::NAN), 3)
                            .f64("pages_per_ms", p.pages_per_ms, 1)
                            .u64("swl_erases", p.report.counters.swl_erases);
                    });
                }
            })
            .arr("engine_points", |a| {
                for p in &engine_points {
                    let snap = &p.metrics.snapshot;
                    a.obj(|row| {
                        row.u64("channels", u64::from(p.channels))
                            .f64("wall_s", p.wall_s, 3)
                            .f64("busy_frac", snap.busy_frac(), 4)
                            .f64("starved_frac", snap.starved_frac(), 4)
                            .f64("backpressure_frac", snap.backpressure_frac(), 4)
                            .f64(
                                "host_backpressure_ms",
                                snap.host_backpressure_ns as f64 / 1e6,
                                3,
                            )
                            .u64("cmd_queue_high_water", snap.command_high_water() as u64)
                            .u64(
                                "completion_queue_high_water",
                                snap.completion_queue.high_water as u64,
                            )
                            .arr("lane_busy_ms", |w| {
                                for lane in &snap.lanes {
                                    w.f64(lane.busy_wall_ns as f64 / 1e6, 3);
                                }
                            });
                    });
                }
            });
    });
    std::fs::write("BENCH_channels.json", json + "\n").expect("write BENCH_channels.json");
    println!("wrote BENCH_channels.json");
}
