//! Times the Figure 5 sweep serially and with the parallel fan-out,
//! verifies the two produce bit-identical points, and emits the wall-clock
//! comparison as `BENCH_sweep.json` (one JSON object) next to a
//! human-readable summary on stdout.
//!
//! Usage: `sweepbench [quick|scaled|paper]`

use std::time::Instant;

use flash_bench::scale_from_args;
use flash_sim::experiments::{first_failure_sweep, PAPER_KS, PAPER_THRESHOLDS};
use flash_sim::{parallel, LayerKind};

fn timed_sweep(
    threads: usize,
    scale: &flash_sim::experiments::ExperimentScale,
) -> (f64, Vec<flash_sim::experiments::FailurePoint>) {
    // The sweeps read the worker count from the environment; pin it for
    // this measurement. Single-threaded main, so this is race-free.
    std::env::set_var(parallel::THREADS_ENV, threads.to_string());
    let start = Instant::now();
    let points = first_failure_sweep(LayerKind::Ftl, scale, &PAPER_THRESHOLDS, &PAPER_KS)
        .expect("simulation failed");
    (start.elapsed().as_secs_f64(), points)
}

fn main() {
    let scale = scale_from_args();
    let threads = parallel::sweep_threads();
    let grid_points = PAPER_THRESHOLDS.len() * PAPER_KS.len() + 1;
    println!(
        "sweep timing: FTL first-failure sweep, {grid_points} points, \
         {} blocks x {} pages, endurance {}",
        scale.blocks, scale.pages_per_block, scale.endurance
    );

    let (serial_s, serial) = timed_sweep(1, &scale);
    println!("serial   (1 thread):   {serial_s:8.2} s");
    let (parallel_s, parallel) = timed_sweep(threads, &scale);
    println!("parallel ({threads} threads):  {parallel_s:8.2} s");

    let identical = serial == parallel;
    let speedup = serial_s / parallel_s;
    println!("speedup: {speedup:.2}x   bit-identical: {identical}");
    assert!(identical, "parallel sweep diverged from serial");

    let json = format!(
        "{{\"bench\":\"first_failure_sweep\",\"layer\":\"ftl\",\
         \"blocks\":{},\"pages_per_block\":{},\"endurance\":{},\
         \"grid_points\":{},\"threads\":{},\
         \"serial_s\":{:.3},\"parallel_s\":{:.3},\"speedup\":{:.3},\
         \"bit_identical\":{}}}\n",
        scale.blocks,
        scale.pages_per_block,
        scale.endurance,
        grid_points,
        threads,
        serial_s,
        parallel_s,
        speedup,
        identical
    );
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    println!("wrote BENCH_sweep.json");
}
