//! Extension study: hot/cold data separation in the FTL.
//!
//! The paper's Figure 7 notes the FTL's baseline live-copy count is tiny
//! because bursty hot writes cluster naturally. A hot-data identifier
//! (multi-hash counting filter, `hotid`) makes this deliberate: hot and
//! cold writes go to different active blocks, so blocks die together and
//! the Cleaner copies even less. This binary measures the interaction of
//! that technique with static wear leveling.
//!
//! Usage: `hotcold [quick|scaled|paper]`

use flash_bench::{print_table, scale_from_args};
use flash_sim::experiments::paper_workload;
use flash_sim::{Simulator, StopCondition, TranslationLayer};
use flash_trace::SegmentResampler;
use ftl::{FtlConfig, PageMappedFtl};
use hotid::HotDataConfig;

fn main() {
    let scale = scale_from_args();
    println!(
        "Hot/cold separation study on FTL (scale: {} blocks x {} pages,\n\
         endurance {})\n",
        scale.blocks, scale.pages_per_block, scale.endurance
    );

    let mut rows = Vec::new();
    for (label, hot, swl) in [
        ("plain", false, None),
        ("+hot/cold", true, None),
        ("+SWL", false, Some(scale.swl_config(100, 0))),
        ("+hot/cold +SWL", true, Some(scale.swl_config(100, 0))),
    ] {
        let mut config = FtlConfig::default();
        if hot {
            config = config.with_hot_data(HotDataConfig::default());
        }
        let device = scale.device();
        let mut ftl = match swl {
            Some(s) => PageMappedFtl::with_swl(device, config, s).expect("ftl builds"),
            None => PageMappedFtl::new(device, config).expect("ftl builds"),
        };
        let spec = paper_workload(TranslationLayer::logical_pages(&ftl), scale.seed);
        let trace = spec
            .fill_events()
            .chain(SegmentResampler::from_spec(spec.clone(), 1234));
        let report = Simulator::new()
            .run(&mut ftl, trace, StopCondition::first_failure())
            .expect("simulation runs");
        let ff = report.first_failure.expect("device wears out");
        rows.push(vec![
            label.to_owned(),
            format!("{:.4}", ff.years()),
            format!("{:.2}", report.counters.avg_live_copies_per_gc_erase()),
            format!(
                "{:.3}",
                (report.counters.host_writes + report.counters.total_live_copies()) as f64
                    / report.counters.host_writes as f64
            ),
            format!("{:.1}", report.erase_stats.std_dev),
        ]);
    }
    print_table(
        &[
            "configuration",
            "first failure (y)",
            "L",
            "write amp",
            "erase dev",
        ],
        &rows,
    );
    println!(
        "\nexpected: separation groups data of similar lifetime, which lowers\n\
         L under mixed streams (clearest at quick scale) and composes with\n\
         SWL on first-failure time; under heavy SWL churn the cold stream's\n\
         packed blocks can raise L even as lifetime still improves."
    );
}
