//! Regenerates **Table 3**: worst-case increased ratio of live-page
//! copyings of a 1 GB MLC×2 chip under static wear leveling (closed form,
//! §4.3, N = 128).

use flash_bench::print_table;
use swl_core::analysis::table3_rows;

fn main() {
    println!("Table 3: increased ratio of live-page copyings (worst case)\n");
    let rows: Vec<Vec<String>> = table3_rows()
        .into_iter()
        .map(|r| {
            vec![
                r.hot_blocks.to_string(),
                r.cold_blocks.to_string(),
                format!("1:{}", r.cold_blocks / r.hot_blocks.max(1)),
                r.threshold.to_string(),
                format!("{}", r.avg_live_copies),
                format!(
                    "{:.4}",
                    r.pages_per_block as f64 / (r.threshold as f64 * r.avg_live_copies)
                ),
                format!("{:.3}%", r.increased_ratio * 100.0),
            ]
        })
        .collect();
    print_table(
        &["H", "C", "H:C", "T", "L", "N/(TxL)", "Increased Ratio"],
        &rows,
    );
    println!(
        "\npaper: 7.572/4.002/3.786/2.001/0.757/0.400/0.379/0.200 %\n\
         (rows 2 and 4 are digit transpositions of the exact 4.020/2.010;\n\
         the T=1000 rows in the paper use the /10 approximation)"
    );
}
