//! `snapbench` — merge throughput and SWL behavior under pinning snapshots.
//!
//! Copy-on-write snapshots change the leveler's world: every live snapshot
//! pins cold pages that host overwrites would otherwise have invalidated,
//! so GC keeps relocating shared data and the SW Leveler's cold-block scan
//! has to work around blocks it may not reclaim. This bench quantifies
//! both sides at **1, 4, and 16 pinning snapshots**:
//!
//! - **SWL behavior**: erases attributed to the leveler and to GC while
//!   the snapshots pin diverging images, plus the end-of-run wear spread
//!   (`max - min` erase counts) and write amplification. The leveler must
//!   actually fire in every arm (`swl_erases > 0` is asserted).
//! - **Merge throughput**: the oldest (most divergent) snapshot is merged
//!   back with the *streaming* dual-iterator merge (`merge_begin` /
//!   `merge_step` / `merge_commit`), timed wall-clock. The merge is
//!   mapping-only — the bench asserts the device programs fewer pages
//!   during the whole merge than the image it merges spans (the programs
//!   are the two manifest commits, not data copies).
//!
//! Every arm is also *verified*: the merged device must read back as the
//! origin overlaid with the snapshot image over the entire write span, and
//! after deleting the surviving snapshots the refcount audit must balance
//! (`Σ refs == live mappings`, zero snapshots, zero pending releases).
//!
//! The JSON summary lands in `BENCH_snap.json`; any assertion failure
//! exits non-zero. Usage: `snapbench [--per-phase N]`.

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Instant;

use flash_bench::json;
use ftl::{FtlConfig, PageMappedFtl, SnapshotConfig};
use nand::{CellKind, Geometry, NandDevice};
use swl_core::rng::SplitMix64;
use swl_core::SwlConfig;

const BLOCKS: u32 = 128;
const PAGES: u32 = 64;
/// Blocks per manifest buffer: 16 snapshots' epoch lists peak at ~191
/// record words, and each buffer holds `4 × 64 = 256`.
const MANIFEST_BLOCKS: u32 = 4;
const OVERPROVISION: u32 = 8;
/// Logical span the workload writes (the snapshot image size).
const SPAN: u64 = 1536;
/// Hot eighth of the span that takes 90 % of the writes.
const HOT: u64 = SPAN / 8;
/// Hot-biased writes between snapshot creates. Kept small on purpose: each
/// divergence phase pins one extra version of every LBA it overwrites, so
/// this bounds the physical space the 16-snapshot arm consumes.
const DEFAULT_PER_PHASE: u64 = 768;
/// Final pinned hammer, in multiples of the per-phase count. Long on
/// purpose: writes here diverge only from the *newest* snapshot (the older
/// images are already pinned), so wear accumulates without new capacity
/// cost and the leveler's trigger is reached in every arm.
const PINNED_HAMMER_PHASES: u64 = 48;
/// LBAs advanced per streaming-merge step.
const MERGE_STEP_LBAS: u64 = 256;

/// The snapshot counts the three arms pin.
const ARMS: [u64; 3] = [1, 4, 16];

fn device() -> NandDevice {
    NandDevice::new(
        Geometry::new(BLOCKS, PAGES, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    )
}

fn ftl_config() -> FtlConfig {
    FtlConfig::new()
        .with_overprovision_blocks(OVERPROVISION)
        .with_snapshots(SnapshotConfig::new().with_manifest_blocks(MANIFEST_BLOCKS))
}

fn swl_config() -> SwlConfig {
    SwlConfig::new(2, 0).with_seed(0x5EED)
}

/// One arm's scorecard.
struct Arm {
    snapshots: u64,
    host_writes: u64,
    /// Leveler / GC erases while at least one snapshot pinned.
    swl_erases_pinned: u64,
    gc_erases_pinned: u64,
    /// End-of-run wear figures over the data blocks.
    wear_mean: f64,
    wear_std: f64,
    wear_min: u64,
    wear_max: u64,
    /// Device programs per host write over the whole run.
    waf: f64,
    /// Streaming-merge figures for the oldest snapshot.
    merge_lbas: u64,
    merge_steps: u64,
    merge_wall_s: f64,
    merge_programs: u64,
    merge_reads: u64,
    /// Post-merge read-back matched the overlay model bit for bit.
    verified: bool,
    /// Refcount audit balanced after deleting the surviving snapshots.
    audit_ok: bool,
}

/// Runs one arm: cold fill, `snapshots` create/diverge rounds, a long
/// pinned hammer, then the timed streaming merge of snapshot 1.
fn run_arm(snapshots: u64, per_phase: u64) -> Arm {
    let mut ftl =
        PageMappedFtl::with_swl(device(), ftl_config(), swl_config()).expect("arm build");
    let mut rng = SplitMix64::new(0x5A9B ^ snapshots);
    let mut flash: HashMap<u64, u64> = HashMap::new();
    let mut value = 0u64;

    // Cold image once, then the paper's skew until the first create.
    for lba in 0..SPAN {
        value += 1;
        ftl.write(lba, value).expect("cold fill");
        flash.insert(lba, value);
    }
    let mut hammer = |ftl: &mut PageMappedFtl, flash: &mut HashMap<u64, u64>, writes: u64| {
        for _ in 0..writes {
            let lba = if rng.chance(0.9) {
                rng.next_below(HOT)
            } else {
                rng.next_below(SPAN)
            };
            value += 1;
            ftl.write(lba, value).expect("host write");
            flash.insert(lba, value);
        }
    };
    hammer(&mut ftl, &mut flash, per_phase);

    // Pin progressively diverging images: snapshot 1 is the oldest and
    // most divergent by merge time.
    let mut oldest_image = None;
    let pinned_from = ftl.counters();
    for id in 1..=snapshots {
        ftl.snapshot_create(id).expect("snapshot create");
        if id == 1 {
            oldest_image = Some(flash.clone());
        }
        hammer(&mut ftl, &mut flash, per_phase);
    }
    // The long pinned phase: every snapshot holds its image while the
    // leveler fights the skew.
    hammer(&mut ftl, &mut flash, per_phase * PINNED_HAMMER_PHASES);
    let pinned_to = ftl.counters();
    let oldest_image = oldest_image.expect("at least one snapshot");

    // Timed streaming merge of the oldest snapshot: mapping work only.
    let before = ftl.device().counters();
    let start = Instant::now();
    ftl.merge_begin(1).expect("merge begin");
    let mut merge_steps = 0u64;
    loop {
        merge_steps += 1;
        if ftl.merge_step(MERGE_STEP_LBAS).expect("merge step") {
            break;
        }
    }
    ftl.merge_commit().expect("merge commit");
    let merge_wall_s = start.elapsed().as_secs_f64();
    let after = ftl.device().counters();

    // The merged device is the origin overlaid with the snapshot image.
    let mut verified = true;
    for lba in 0..SPAN {
        let got = ftl.read(lba).expect("merged read");
        let expected = oldest_image.get(&lba).or(flash.get(&lba)).copied();
        if got != expected {
            eprintln!(
                "snapbench: {snapshots}-snapshot arm diverged at lba {lba}: \
                 got {got:?}, expected {expected:?}"
            );
            verified = false;
        }
    }

    // Drop the surviving snapshots; the book must balance afterwards.
    for id in 2..=snapshots {
        ftl.snapshot_delete(id).expect("snapshot delete");
    }
    let audit = ftl.snapshot_audit().expect("snapshots enabled");
    let audit_ok =
        audit.refcount_sum == audit.mapping_count && audit.snapshots == 0 && audit.pending_merge == 0;

    let counters = ftl.counters();
    let wear = ftl.device().erase_stats();
    let device_counters = ftl.device().counters();
    Arm {
        snapshots,
        host_writes: counters.host_writes,
        swl_erases_pinned: pinned_to.swl_erases - pinned_from.swl_erases,
        gc_erases_pinned: pinned_to.gc_erases - pinned_from.gc_erases,
        wear_mean: wear.mean,
        wear_std: wear.std_dev,
        wear_min: wear.min,
        wear_max: wear.max,
        waf: device_counters.programs as f64 / counters.host_writes.max(1) as f64,
        merge_lbas: SPAN,
        merge_steps,
        merge_wall_s,
        merge_programs: after.programs - before.programs,
        merge_reads: after.reads - before.reads,
        verified,
        audit_ok,
    }
}

fn main() -> ExitCode {
    let per_phase = {
        let mut args = std::env::args().skip(1);
        let mut per_phase = DEFAULT_PER_PHASE;
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--per-phase" => {
                    per_phase = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--per-phase needs a number");
                }
                other => panic!("unknown argument {other:?}"),
            }
        }
        per_phase.max(1)
    };
    println!(
        "snapbench: {BLOCKS} blocks x {PAGES} pages, span {SPAN}, hot {HOT}, \
         {per_phase} writes per phase, arms {ARMS:?}"
    );

    let arms: Vec<Arm> = ARMS.into_iter().map(|n| run_arm(n, per_phase)).collect();

    let mut pass = true;
    let mut failures: Vec<String> = Vec::new();
    for arm in &arms {
        let lbas_per_s = arm.merge_lbas as f64 / arm.merge_wall_s.max(1e-9);
        println!(
            "{:>2} snapshot(s): {} host writes, pinned-phase erases swl {} / gc {}, \
             wear {:.1}±{:.1} (spread {}), WAF {:.2}; merge {} lbas in {} steps, \
             {:.3} ms ({:.0} lbas/s), {} programs / {} reads",
            arm.snapshots,
            arm.host_writes,
            arm.swl_erases_pinned,
            arm.gc_erases_pinned,
            arm.wear_mean,
            arm.wear_std,
            arm.wear_max - arm.wear_min,
            arm.waf,
            arm.merge_lbas,
            arm.merge_steps,
            arm.merge_wall_s * 1e3,
            lbas_per_s,
            arm.merge_programs,
            arm.merge_reads,
        );
        if !arm.verified {
            pass = false;
            failures.push(format!(
                "snapbench: {}-snapshot merge diverged from the overlay model",
                arm.snapshots
            ));
        }
        if !arm.audit_ok {
            pass = false;
            failures.push(format!(
                "snapbench: {}-snapshot refcount audit did not balance",
                arm.snapshots
            ));
        }
        if arm.swl_erases_pinned == 0 {
            pass = false;
            failures.push(format!(
                "snapbench: the leveler never fired while {} snapshot(s) pinned",
                arm.snapshots
            ));
        }
        // Thin merge: manifest commits only, never a per-page data copy.
        if arm.merge_programs >= arm.merge_lbas {
            pass = false;
            failures.push(format!(
                "snapbench: {}-snapshot merge programmed {} pages for a {}-lba image — \
                 that is data copying, not a mapping merge",
                arm.snapshots, arm.merge_programs, arm.merge_lbas
            ));
        }
    }

    let json_text = json::object(|o| {
        o.str("bench", "snapshot_merge")
            .u64("blocks", u64::from(BLOCKS))
            .u64("pages_per_block", u64::from(PAGES))
            .u64("manifest_blocks", u64::from(MANIFEST_BLOCKS))
            .u64("span", SPAN)
            .u64("hot", HOT)
            .u64("per_phase", per_phase)
            .u64("merge_step_lbas", MERGE_STEP_LBAS)
            .bool("pass", pass)
            .arr("arms", |a| {
                for arm in &arms {
                    a.obj(|row| {
                        row.u64("snapshots", arm.snapshots)
                            .u64("host_writes", arm.host_writes)
                            .u64("swl_erases_pinned", arm.swl_erases_pinned)
                            .u64("gc_erases_pinned", arm.gc_erases_pinned)
                            .f64("wear_mean", arm.wear_mean, 2)
                            .f64("wear_std", arm.wear_std, 2)
                            .u64("wear_min", arm.wear_min)
                            .u64("wear_max", arm.wear_max)
                            .u64("wear_spread", arm.wear_max - arm.wear_min)
                            .f64("waf", arm.waf, 3)
                            .u64("merge_lbas", arm.merge_lbas)
                            .u64("merge_steps", arm.merge_steps)
                            .f64("merge_wall_s", arm.merge_wall_s, 6)
                            .f64(
                                "merge_lbas_per_s",
                                arm.merge_lbas as f64 / arm.merge_wall_s.max(1e-9),
                                0,
                            )
                            .u64("merge_programs", arm.merge_programs)
                            .u64("merge_reads", arm.merge_reads)
                            .bool("verified", arm.verified)
                            .bool("audit_ok", arm.audit_ok);
                    });
                }
            });
    });
    std::fs::write("BENCH_snap.json", json_text + "\n").expect("write BENCH_snap.json");
    println!("wrote BENCH_snap.json");
    for failure in &failures {
        eprintln!("{failure}");
    }
    if pass {
        println!("snapbench: OK");
        ExitCode::SUCCESS
    } else {
        println!("snapbench: FAILED");
        ExitCode::FAILURE
    }
}
