//! `telbench` — measures and asserts the zero-cost claims of the telemetry
//! layer.
//!
//! **Sink arms** (the original gate): a quick-scale first-failure run (the
//! Figure 5 workload) through a [`flash_telemetry::NullSink`]-instrumented
//! stack must cost the same as the uninstrumented path, because `NullSink`
//! monomorphisation compiles every emission site out. Three arms,
//! interleaved:
//!
//! - `plain` — [`first_failure_run`], the pre-telemetry default path;
//! - `null` — [`instrumented_run`] with `NullSink` (must be free);
//! - `count` — [`instrumented_run`] with a counting sink (the real cost of
//!   instrumentation when a sink IS installed, reported for context).
//!
//! **Engine arms** (the runtime-metrics gate): the same 4-channel
//! per-channel-SWL workload through [`flash_sim::Engine`] with wall-clock
//! metrics off and on. The disabled path is a separate monomorphisation of
//! the worker loop that takes no timestamps at all, so metrics-off must
//! match the seed engine's cost; metrics-on is allowed at most 2% over
//! metrics-off, and both runs (plus the virtual-time oracle) must produce
//! bit-identical simulation reports — the metrics layer observes, never
//! perturbs.
//!
//! **Health arm** (the health-plane gate): the engine arm again with
//! [`flash_sim::EngineConfig::with_health`] enabled and metrics off. The
//! health plane rides the telemetry emission sites the workers already
//! visit (relaxed atomic stores, no clock reads, no locks), so it gets the
//! same ≤ 2% budget as the metrics layer and the same bit-identity
//! requirement against the oracle.
//!
//! In release builds the `null` arm is asserted within 1% of `plain` and
//! the metrics-on / health-on arms within 2% of metrics-off; all
//! report-equality assertions run in every build. Overheads are computed
//! as the best *paired* per-rep ratio (arm vs its baseline measured
//! back-to-back), so common-mode machine noise cancels instead of flaking
//! the gate. The last stdout line is a machine-readable JSON summary.
//!
//! Usage: `telbench [reps]` (default 5).

use std::process::ExitCode;
use std::time::Instant;

use flash_bench::json;
use flash_sim::experiments::{
    first_failure_run, instrumented_run, ExperimentScale,
};
use flash_sim::{
    Engine, EngineConfig, LayerKind, SimConfig, SimReport, Simulator, StopCondition,
    StripedLayer, StripedReport, SwlCoordination,
};
use flash_telemetry::{CountSink, NullSink};
use flash_trace::{SyntheticTrace, TraceEvent, WorkloadSpec};
use nand::{CellKind, ChannelGeometry, Geometry};

/// Allowed `null` vs `plain` overhead in release mode.
const MAX_OVERHEAD: f64 = 0.01;
/// Allowed engine metrics-on vs metrics-off overhead in release mode.
const MAX_ENGINE_OVERHEAD: f64 = 0.02;
/// Host ops pushed through the engine arms each rep.
const ENGINE_EVENTS: u64 = 1_500;
/// Pages per host op in the engine arms: 512 KiB requests (256 × 2 KiB
/// pages), the classic large-sequential-I/O benchmark shape. Striped over
/// 4 channels this is 64 pages of simulated work per lane command, so the
/// metered path's one clock read per command is measured as arithmetic
/// overhead rather than drowned in per-command queueing noise.
const ENGINE_SPAN: u32 = 256;
const ENGINE_CHANNELS: u32 = 4;

fn timed(run: impl FnOnce() -> SimReport) -> (f64, SimReport) {
    let start = Instant::now();
    let report = run();
    (start.elapsed().as_secs_f64(), report)
}

fn engine_trace(logical_pages: u64, seed: u64) -> impl Iterator<Item = TraceEvent> {
    SyntheticTrace::new(WorkloadSpec::paper(logical_pages).with_seed(seed))
        .map(move |e| e.widen(ENGINE_SPAN, logical_pages))
}

fn engine_geometry(scale: &ExperimentScale) -> ChannelGeometry {
    ChannelGeometry::new(
        ENGINE_CHANNELS,
        1,
        Geometry::new(
            scale.blocks / ENGINE_CHANNELS,
            scale.pages_per_block,
            2048,
        ),
    )
}

/// The virtual-time oracle for the engine arms' configuration.
fn engine_oracle(scale: &ExperimentScale) -> StripedReport {
    let mut striped = StripedLayer::build(
        LayerKind::Ftl,
        engine_geometry(scale),
        CellKind::Mlc2.spec().with_endurance(scale.endurance),
        Some(scale.swl_config(100, 0)),
        SwlCoordination::PerChannel,
        &SimConfig::default(),
    )
    .expect("oracle build failed");
    let pages = striped.logical_pages();
    Simulator::new()
        .run_striped(
            &mut striped,
            engine_trace(pages, scale.seed),
            StopCondition::events(ENGINE_EVENTS),
        )
        .expect("oracle run failed")
}

/// One engine run with the observer planes toggled; wall seconds and the
/// report.
fn engine_arm(scale: &ExperimentScale, metrics: bool, health: bool) -> (f64, StripedReport) {
    let mut engine = Engine::new(
        LayerKind::Ftl,
        engine_geometry(scale),
        CellKind::Mlc2.spec().with_endurance(scale.endurance),
        Some(scale.swl_config(100, 0)),
        SwlCoordination::PerChannel,
        &SimConfig::default(),
        EngineConfig::default()
            .with_threads(ENGINE_CHANNELS)
            .with_queue_depth(64)
            .with_metrics(metrics)
            .with_health(health),
    )
    .expect("engine build failed");
    let pages = engine.logical_pages();
    let start = Instant::now();
    engine
        .run(engine_trace(pages, scale.seed), StopCondition::events(ENGINE_EVENTS))
        .expect("engine run failed");
    let run = engine.finish().expect("engine finish failed");
    assert_eq!(
        run.metrics.is_some(),
        metrics,
        "metrics report presence must match the configuration"
    );
    (start.elapsed().as_secs_f64(), run.report)
}

fn main() -> ExitCode {
    let reps: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("reps must be a positive integer"))
        .unwrap_or(5)
        .max(1);
    let scale = ExperimentScale::quick();
    let kind = LayerKind::Ftl;
    let swl = Some(scale.swl_config(100, 0));
    let stop = StopCondition::first_failure();

    let mut plain_min = f64::INFINITY;
    let mut null_min = f64::INFINITY;
    let mut count_min = f64::INFINITY;
    let mut engine_off_min = f64::INFINITY;
    let mut engine_on_min = f64::INFINITY;
    let mut health_min = f64::INFINITY;
    // Overheads are gated on the best *paired* per-rep ratio, not on the
    // quotient of independent minima: an arm and its baseline run
    // back-to-back inside one rep, so common-mode machine noise (frequency
    // drift, a noisy neighbour) hits both sides of a pair roughly equally,
    // and since noise only ever inflates a measurement the cleanest pair
    // bounds the true overhead from above.
    let mut null_ratio = f64::INFINITY;
    let mut count_ratio = f64::INFINITY;
    let mut engine_ratio = f64::INFINITY;
    let mut health_ratio = f64::INFINITY;
    let mut reference: Option<SimReport> = None;
    let mut events = 0u64;
    let engine_reference = engine_oracle(&scale);

    for rep in 0..reps {
        let (plain_s, plain) = timed(|| first_failure_run(kind, swl, &scale).expect("plain run"));
        let (null_s, null) = timed(|| {
            instrumented_run(kind, swl, &scale, NullSink, stop)
                .expect("null-sink run")
                .0
        });
        let (count_s, (count, sink)) =
            timed_pair(|| instrumented_run(kind, swl, &scale, CountSink::default(), stop).expect("count-sink run"));
        let (engine_off_s, engine_off) = engine_arm(&scale, false, false);
        let (engine_on_s, engine_on) = engine_arm(&scale, true, false);
        let (health_s, engine_health) = engine_arm(&scale, false, true);
        plain_min = plain_min.min(plain_s);
        null_min = null_min.min(null_s);
        count_min = count_min.min(count_s);
        engine_off_min = engine_off_min.min(engine_off_s);
        engine_on_min = engine_on_min.min(engine_on_s);
        health_min = health_min.min(health_s);
        null_ratio = null_ratio.min(null_s / plain_s);
        count_ratio = count_ratio.min(count_s / plain_s);
        engine_ratio = engine_ratio.min(engine_on_s / engine_off_s);
        health_ratio = health_ratio.min(health_s / engine_off_s);
        events = sink.events;

        assert_eq!(plain, null, "NullSink run diverged from the plain path");
        assert_eq!(plain, count, "CountSink run perturbed the simulation");
        assert_eq!(
            engine_off, engine_reference,
            "metrics-off engine diverged from the virtual-time oracle"
        );
        assert_eq!(
            engine_on, engine_reference,
            "metrics-on engine diverged from the virtual-time oracle"
        );
        assert_eq!(
            engine_health, engine_reference,
            "health-plane engine diverged from the virtual-time oracle"
        );
        if let Some(reference) = &reference {
            assert_eq!(reference, &plain, "rep {rep} not reproducible");
        } else {
            reference = Some(plain);
        }
    }

    let null_overhead = null_ratio - 1.0;
    let count_overhead = count_ratio - 1.0;
    let engine_overhead = engine_ratio - 1.0;
    let health_overhead = health_ratio - 1.0;
    println!(
        "telemetry overhead, quick-scale fig5 workload, \
         min times / best-pair overheads over {reps} reps:"
    );
    println!("  plain       {:>9.2} ms", plain_min * 1e3);
    println!(
        "  null sink   {:>9.2} ms  ({:+.2}%)",
        null_min * 1e3,
        null_overhead * 100.0
    );
    println!(
        "  count sink  {:>9.2} ms  ({:+.2}%, {events} events)",
        count_min * 1e3,
        count_overhead * 100.0
    );
    println!(
        "engine runtime metrics, {ENGINE_EVENTS} events x{ENGINE_CHANNELS}ch, \
         min times / best-pair overhead over {reps} reps:"
    );
    println!("  metrics off {:>9.2} ms", engine_off_min * 1e3);
    println!(
        "  metrics on  {:>9.2} ms  ({:+.2}%)",
        engine_on_min * 1e3,
        engine_overhead * 100.0
    );
    println!(
        "  health on   {:>9.2} ms  ({:+.2}%)",
        health_min * 1e3,
        health_overhead * 100.0
    );
    println!("  all engine reports bit-identical to the virtual-time oracle");

    let sink_pass = cfg!(debug_assertions) || null_overhead <= MAX_OVERHEAD;
    let engine_pass = cfg!(debug_assertions) || engine_overhead <= MAX_ENGINE_OVERHEAD;
    let health_pass = cfg!(debug_assertions) || health_overhead <= MAX_ENGINE_OVERHEAD;
    let pass = sink_pass && engine_pass && health_pass;
    println!(
        "{}",
        json::object(|o| {
            o.str("bench", "telemetry_overhead")
                .u64("reps", u64::from(reps))
                .f64("plain_ms", plain_min * 1e3, 3)
                .f64("null_sink_ms", null_min * 1e3, 3)
                .f64("count_sink_ms", count_min * 1e3, 3)
                .f64("null_overhead", null_overhead, 4)
                .f64("count_overhead", count_overhead, 4)
                .u64("events", events)
                .f64("engine_off_ms", engine_off_min * 1e3, 3)
                .f64("engine_on_ms", engine_on_min * 1e3, 3)
                .f64("engine_overhead", engine_overhead, 4)
                .f64("health_ms", health_min * 1e3, 3)
                .f64("health_overhead", health_overhead, 4)
                .bool("engine_bit_identical", true)
                .bool("pass", pass);
        })
    );
    if !sink_pass {
        eprintln!(
            "telbench: NullSink overhead {:.2}% exceeds the {:.0}% budget",
            null_overhead * 100.0,
            MAX_OVERHEAD * 100.0
        );
    }
    if !engine_pass {
        eprintln!(
            "telbench: engine metrics overhead {:.2}% exceeds the {:.0}% budget",
            engine_overhead * 100.0,
            MAX_ENGINE_OVERHEAD * 100.0
        );
    }
    if !health_pass {
        eprintln!(
            "telbench: health-plane overhead {:.2}% exceeds the {:.0}% budget",
            health_overhead * 100.0,
            MAX_ENGINE_OVERHEAD * 100.0
        );
    }
    if !pass {
        return ExitCode::FAILURE;
    }
    if cfg!(debug_assertions) {
        eprintln!("telbench: debug build — overhead assertions skipped (run with --release)");
    }
    ExitCode::SUCCESS
}

fn timed_pair<T>(run: impl FnOnce() -> (SimReport, T)) -> (f64, (SimReport, T)) {
    let start = Instant::now();
    let out = run();
    (start.elapsed().as_secs_f64(), out)
}
