//! `telbench` — measures and asserts the zero-cost claim of the telemetry
//! layer: a quick-scale first-failure run (the Figure 5 workload) through a
//! [`flash_telemetry::NullSink`]-instrumented stack must cost the same as
//! the uninstrumented path, because `NullSink` monomorphisation compiles
//! every emission site out.
//!
//! Three arms, interleaved, min-of-reps wall time:
//!
//! - `plain` — [`first_failure_run`], the pre-telemetry default path;
//! - `null` — [`instrumented_run`] with `NullSink` (must be free);
//! - `count` — [`instrumented_run`] with a counting sink (the real cost of
//!   instrumentation when a sink IS installed, reported for context).
//!
//! In release builds the `null` arm is asserted within 1% of `plain`, and
//! all three arms must produce bit-identical simulation reports. The last
//! stdout line is a machine-readable JSON summary.
//!
//! Usage: `telbench [reps]` (default 5).

use std::process::ExitCode;
use std::time::Instant;

use flash_sim::experiments::{first_failure_run, instrumented_run, ExperimentScale};
use flash_sim::{LayerKind, SimReport, StopCondition};
use flash_telemetry::{CountSink, NullSink};

/// Allowed `null` vs `plain` overhead in release mode.
const MAX_OVERHEAD: f64 = 0.01;

fn timed(run: impl FnOnce() -> SimReport) -> (f64, SimReport) {
    let start = Instant::now();
    let report = run();
    (start.elapsed().as_secs_f64(), report)
}

fn main() -> ExitCode {
    let reps: u32 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("reps must be a positive integer"))
        .unwrap_or(5)
        .max(1);
    let scale = ExperimentScale::quick();
    let kind = LayerKind::Ftl;
    let swl = Some(scale.swl_config(100, 0));
    let stop = StopCondition::first_failure();

    let mut plain_min = f64::INFINITY;
    let mut null_min = f64::INFINITY;
    let mut count_min = f64::INFINITY;
    let mut reference: Option<SimReport> = None;
    let mut events = 0u64;

    for rep in 0..reps {
        let (plain_s, plain) = timed(|| first_failure_run(kind, swl, &scale).expect("plain run"));
        let (null_s, null) = timed(|| {
            instrumented_run(kind, swl, &scale, NullSink, stop)
                .expect("null-sink run")
                .0
        });
        let (count_s, (count, sink)) =
            timed_pair(|| instrumented_run(kind, swl, &scale, CountSink::default(), stop).expect("count-sink run"));
        plain_min = plain_min.min(plain_s);
        null_min = null_min.min(null_s);
        count_min = count_min.min(count_s);
        events = sink.events;

        assert_eq!(plain, null, "NullSink run diverged from the plain path");
        assert_eq!(plain, count, "CountSink run perturbed the simulation");
        if let Some(reference) = &reference {
            assert_eq!(reference, &plain, "rep {rep} not reproducible");
        } else {
            reference = Some(plain);
        }
    }

    let null_overhead = null_min / plain_min - 1.0;
    let count_overhead = count_min / plain_min - 1.0;
    println!("telemetry overhead, quick-scale fig5 workload, min of {reps} reps:");
    println!("  plain       {:>9.2} ms", plain_min * 1e3);
    println!(
        "  null sink   {:>9.2} ms  ({:+.2}%)",
        null_min * 1e3,
        null_overhead * 100.0
    );
    println!(
        "  count sink  {:>9.2} ms  ({:+.2}%, {events} events)",
        count_min * 1e3,
        count_overhead * 100.0
    );

    let pass = cfg!(debug_assertions) || null_overhead <= MAX_OVERHEAD;
    println!(
        "{{\"bench\":\"telemetry_overhead\",\"reps\":{reps},\"plain_ms\":{:.3},\
         \"null_sink_ms\":{:.3},\"count_sink_ms\":{:.3},\"null_overhead\":{:.4},\
         \"count_overhead\":{:.4},\"events\":{events},\"pass\":{pass}}}",
        plain_min * 1e3,
        null_min * 1e3,
        count_min * 1e3,
        null_overhead,
        count_overhead,
    );
    if !pass {
        eprintln!(
            "telbench: NullSink overhead {:.2}% exceeds the {:.0}% budget",
            null_overhead * 100.0,
            MAX_OVERHEAD * 100.0
        );
        return ExitCode::FAILURE;
    }
    if cfg!(debug_assertions) {
        eprintln!("telbench: debug build — overhead assertion skipped (run with --release)");
    }
    ExitCode::SUCCESS
}

fn timed_pair<T>(run: impl FnOnce() -> (SimReport, T)) -> (f64, (SimReport, T)) {
    let start = Instant::now();
    let out = run();
    (start.elapsed().as_secs_f64(), out)
}
