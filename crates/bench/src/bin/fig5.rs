//! Regenerates **Figure 5**: first failure time (years) versus BET group
//! factor `k` for T ∈ {100, 400, 700, 1000}, for FTL (a) and NFTL (b).
//!
//! Usage: `fig5 [quick|scaled|paper]`

use flash_bench::{print_table, scale_from_args};
use flash_sim::experiments::{first_failure_sweep, PAPER_KS, PAPER_THRESHOLDS};
use flash_sim::LayerKind;

fn main() {
    let scale = scale_from_args();
    println!(
        "Figure 5: first failure time (scale: {} blocks x {} pages, endurance {})\n",
        scale.blocks, scale.pages_per_block, scale.endurance
    );
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        let points = first_failure_sweep(kind, &scale, &PAPER_THRESHOLDS, &PAPER_KS)
            .expect("simulation failed");
        let baseline_years = points[0].years.expect("baseline wears out");
        println!("{kind} (baseline: {baseline_years:.4} years)\n");
        let mut rows = Vec::new();
        for &t in &PAPER_THRESHOLDS {
            let mut row = vec![format!("T={t}")];
            for &k in &PAPER_KS {
                let point = points
                    .iter()
                    .find(|p| p.threshold == Some(t) && p.k == k)
                    .expect("grid point present");
                match point.years {
                    Some(y) => row.push(format!(
                        "{y:.4}y ({:+.0}%)",
                        (y / baseline_years - 1.0) * 100.0
                    )),
                    None => row.push("no failure".to_owned()),
                }
            }
            rows.push(row);
        }
        print_table(&["", "k=0", "k=1", "k=2", "k=3"], &rows);
        println!();
    }
    println!(
        "paper shape: +SWL beats the baseline everywhere; best improvement\n\
         at small T (FTL additionally tolerates/profits from larger k);\n\
         paper improvements at T=100, k=0: FTL +51.2%, NFTL +87.5%."
    );
}
