//! `swlhealth` — the device health plane's CLI: drives a served
//! [`flash_sim::Service`] (write cache on, health plane on) through a
//! deterministic hot-biased single-client workload at a deliberately low
//! endurance, and polls the management plane ([`Service::stats`]) every
//! `--report-every` accepted ops, printing one SMART-style report line per
//! poll plus alert lines whenever the composite state changes
//! (Good → Warn → Critical).
//!
//! Every report is taken at a durability barrier ([`Service::flush`]), so
//! the engine pipeline is quiesced and the shared wear table is exact —
//! the export carries **no wall-clock fields** and is bit-reproducible,
//! which is what lets CI pin a golden fixture of it.
//!
//! With `--out FILE` the run is exported as JSONL (schema v1, one flat
//! object per line): a `swlhealth_meta` header, `health` lines per poll,
//! `alert` lines on state transitions (emitted just before the `health`
//! line that carries the new state), and one trailing `final` line.
//! `swlhealth --check FILE` validates such an export and exits non-zero on
//! any drift — the same contract style as `swlstat --check` /
//! `engtop --check` — including cross-line invariants: monotone wear /
//! host pages / retirements, seq continuity, the forecast band's order,
//! `life_used == wear_max / endurance`, and every alert's `from`/`to`
//! matching the neighbouring health lines.
//!
//! ```text
//! swlhealth [quick|scaled|paper] [--ops N] [--endurance N]
//!           [--report-every N] [--out FILE]
//! swlhealth --check FILE
//! ```
//!
//! [`Service::stats`]: flash_sim::service::Service::stats
//! [`Service::flush`]: flash_sim::service::Service::flush

use std::process::ExitCode;

use flash_bench::json::{self, JsonScalar};
use flash_sim::experiments::ExperimentScale;
use flash_sim::service::cache::CacheConfig;
use flash_sim::service::{Service, ServiceConfig};
use flash_sim::{EngineConfig, LayerKind, SimConfig, SwlCoordination};
use flash_telemetry::health::HealthReport;
use hotid::HotDataConfig;
use nand::{CellKind, ChannelGeometry, Geometry};
use swl_core::rng::SplitMix64;
use swl_core::SwlConfig;

/// JSONL export schema version; bump on any line-shape change.
const SCHEMA: u64 = 1;
const CHANNELS: u32 = 4;
/// SWL threshold, scaled to the low endurance the tool runs at (the usual
/// T=100 would never fire before a 24-cycle block dies, and a health demo
/// with a dormant leveler would report `unevenness 0` forever).
const SWL_THRESHOLD: u64 = 8;
/// Write-cache pages for the driven run.
const CACHE_PAGES: usize = 64;
/// Default per-block endurance: low enough that the quick geometry walks
/// the whole Good → Warn → Critical ladder within the default op budget.
const DEFAULT_ENDURANCE: u32 = 24;
const DEFAULT_OPS: u64 = 20_000;
const DEFAULT_REPORT_EVERY: u64 = 1_000;

struct Options {
    scale: ExperimentScale,
    ops: u64,
    endurance: u32,
    report_every: u64,
    out: Option<String>,
    check: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        scale: ExperimentScale::quick(),
        ops: DEFAULT_OPS,
        endurance: DEFAULT_ENDURANCE,
        report_every: DEFAULT_REPORT_EVERY,
        out: None,
        check: None,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "quick" => options.scale = ExperimentScale::quick(),
            "scaled" => options.scale = ExperimentScale::scaled(),
            "paper" => options.scale = ExperimentScale::paper(),
            "--ops" => {
                options.ops = value(&mut args, "--ops")?
                    .parse()
                    .map_err(|_| "--ops needs a number")?;
            }
            "--endurance" => {
                options.endurance = value(&mut args, "--endurance")?
                    .parse()
                    .map_err(|_| "--endurance needs a number")?;
            }
            "--report-every" => {
                options.report_every = value(&mut args, "--report-every")?
                    .parse::<u64>()
                    .map_err(|_| "--report-every needs a number")?
                    .max(1);
            }
            "--out" => options.out = Some(value(&mut args, "--out")?),
            "--check" => options.check = Some(value(&mut args, "--check")?),
            "--help" | "-h" => {
                return Err(
                    "usage: swlhealth [quick|scaled|paper] [--ops N] [--endurance N] \
                     [--report-every N] [--out FILE] | swlhealth --check FILE"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(options)
}

/// The driven workload: hot-biased single-client writes over ~40 % of the
/// logical space (the svcbench footprint), 90 % of them inside the hot
/// eighth — the cold majority is what static wear leveling exists for, the
/// hot minority is what wears the tail out. Deterministic in `seed`.
struct Workload {
    rng: SplitMix64,
    base: u64,
    span: u64,
    hot_set: u64,
    next_value: u64,
}

impl Workload {
    fn new(logical_pages: u64, seed: u64) -> Self {
        let span = (logical_pages * 2 / 5).max(8);
        Self {
            rng: SplitMix64::new(seed ^ 0x5EA1),
            base: 0,
            span,
            hot_set: (span / 8).max(4).min(span),
            next_value: 0,
        }
    }

    /// The next write: `(lba, data)`, 1–4 pages, every value unique.
    fn next(&mut self) -> (u64, Vec<u64>) {
        let len = self.rng.range_usize(1..5).min(self.span as usize);
        let lba = self.base
            + if self.rng.chance(0.9) {
                self.rng.next_below(self.hot_set)
            } else {
                self.rng.next_below(self.span)
            }
            .min(self.span - len as u64);
        let data = (0..len)
            .map(|_| {
                self.next_value += 1;
                self.next_value
            })
            .collect();
        (lba, data)
    }
}

fn build_service(options: &Options) -> Service {
    let scale = &options.scale;
    assert!(
        scale.blocks.is_multiple_of(CHANNELS),
        "{CHANNELS} channels must divide {} blocks",
        scale.blocks
    );
    let geometry = ChannelGeometry::new(
        CHANNELS,
        1,
        Geometry::new(scale.blocks / CHANNELS, scale.pages_per_block, 2048),
    );
    let cache = CacheConfig::sized(CACHE_PAGES).with_hot(HotDataConfig {
        hot_threshold: 2,
        ..HotDataConfig::default()
    });
    Service::build(
        LayerKind::Ftl,
        geometry,
        CellKind::Mlc2.spec().with_endurance(options.endurance),
        Some(SwlConfig::new(SWL_THRESHOLD, 0).with_seed(scale.seed)),
        SwlCoordination::PerChannel,
        &SimConfig::default(),
        ServiceConfig::default()
            .with_engine(
                EngineConfig::default()
                    .with_threads(CHANNELS)
                    .with_queue_depth(8)
                    .with_health(true),
            )
            .with_cache(cache),
    )
    .expect("service build failed")
}

/// One `health` JSONL line from a barrier-quiesced report.
fn health_line(seq: u64, ops: u64, report: &HealthReport) -> String {
    json::object(|o| {
        o.str("kind", "health")
            .u64("seq", seq)
            .u64("ops", ops)
            .u64("host_pages", report.host_pages)
            .u64("state", report.state.code())
            .f64("life_used", report.life_used, 4)
            .u64("wear_max", report.wear.max)
            .u64("wear_p90", report.wear.p90)
            .u64("wear_p50", report.wear.p50)
            .f64("wear_mean", report.wear.mean, 3)
            .f64("wear_sigma", report.wear.std_dev, 3)
            .u64("retired", report.retired)
            .u64("gc_erases", report.gc_erases)
            .u64("swl_erases", report.swl_erases)
            .u64("bet_ecnt", report.bet_ecnt)
            .u64("bet_fcnt", report.bet_fcnt)
            .f64("tail_rate", report.tail_rate, 6)
            .f64("mean_rate", report.mean_rate, 6)
            .f64("unevenness", report.unevenness_trend, 3)
            .f64("cache_absorption", report.cache_absorption(), 4);
        if let (Some(lo), Some(mid), Some(hi)) = (
            report.forecast.earliest,
            report.forecast.central,
            report.forecast.latest,
        ) {
            o.u64("forecast_earliest", lo)
                .u64("forecast_central", mid)
                .u64("forecast_latest", hi);
        }
    })
}

/// The printed per-poll report row.
fn print_report(seq: u64, ops: u64, report: &HealthReport) {
    let forecast = match report.forecast.central {
        Some(mid) => format!(
            "~{mid} pages left ({}..{})",
            report
                .forecast
                .earliest
                .map_or("?".to_owned(), |v| v.to_string()),
            report
                .forecast
                .latest
                .map_or("?".to_owned(), |v| v.to_string()),
        ),
        None => "unbounded".to_owned(),
    };
    println!(
        "#{seq:<4} ops {ops:>8}  {:<8} life {:5.1}%  wear max {} p90 {} mean {:.1}  \
         retired {}  forecast {forecast}",
        report.state.token(),
        report.life_used * 100.0,
        report.wear.max,
        report.wear.p90,
        report.wear.mean,
        report.retired,
    );
}

fn run(options: &Options) -> Result<(), String> {
    let mut service = build_service(options);
    let mut workload = Workload::new(service.logical_pages(), options.scale.seed);
    println!(
        "swlhealth: FTL x{CHANNELS}ch, {} blocks x {} pages, endurance {}, \
         SWL (T={SWL_THRESHOLD}, k=0, per-channel), cache {CACHE_PAGES} pages, \
         {} ops, report every {}",
        options.scale.blocks,
        options.scale.pages_per_block,
        options.endurance,
        options.ops,
        options.report_every,
    );

    let blocks = service
        .health_runtime()
        .expect("health was enabled")
        .blocks() as u64;
    let mut jsonl = vec![json::object(|o| {
        o.str("kind", "swlhealth_meta")
            .u64("schema", SCHEMA)
            .u64("blocks", blocks)
            .u64("endurance", u64::from(options.endurance))
            .u64("report_every", options.report_every)
            .u64("ops", options.ops);
    })];

    let mut seq = 0u64;
    let mut done = 0u64;
    let mut last_state: Option<u64> = None;
    let mut last_report = None;
    while done < options.ops {
        let burst = options.report_every.min(options.ops - done);
        for _ in 0..burst {
            let (lba, data) = workload.next();
            service
                .write(lba, &data)
                .map_err(|e| format!("write failed: {e}"))?;
        }
        done += burst;
        // Quiesce before sampling: the report then reflects exactly the
        // ops accepted so far, independent of worker-thread progress.
        service.flush().map_err(|e| format!("flush failed: {e}"))?;
        let report = service.stats().expect("health was enabled");
        let state = report.state.code();
        if let Some(from) = last_state {
            if from != state {
                println!(
                    "ALERT at op {done}: health {} -> {}",
                    code_token(from),
                    report.state.token()
                );
                jsonl.push(json::object(|o| {
                    o.str("kind", "alert")
                        .u64("seq", seq)
                        .u64("ops", done)
                        .u64("from", from)
                        .u64("to", state);
                }));
            }
        }
        last_state = Some(state);
        print_report(seq, done, &report);
        jsonl.push(health_line(seq, done, &report));
        seq += 1;
        last_report = Some(report);
    }
    let report = last_report.expect("at least one poll ran");
    jsonl.push(json::object(|o| {
        o.str("kind", "final")
            .u64("ops", done)
            .u64("host_pages", report.host_pages)
            .u64("state", report.state.code())
            .f64("life_used", report.life_used, 4)
            .u64("wear_max", report.wear.max)
            .u64("retired", report.retired);
    }));
    println!(
        "final: {} after {} ops — life {:.1}%, wear max {}/{}, {} retired, \
         {} gc / {} swl erases",
        report.state.token(),
        done,
        report.life_used * 100.0,
        report.wear.max,
        options.endurance,
        report.retired,
        report.gc_erases,
        report.swl_erases,
    );
    service.finish().map_err(|e| format!("finish failed: {e}"))?;

    if let Some(path) = &options.out {
        std::fs::write(path, jsonl.join("\n") + "\n").map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {} JSONL lines to {path} (swlhealth schema v{SCHEMA})", jsonl.len());
    }
    Ok(())
}

fn code_token(code: u64) -> &'static str {
    match code {
        0 => "good",
        1 => "warn",
        _ => "critical",
    }
}

/// The fields every line of a kind must carry as numbers.
fn required_fields(kind: &str) -> Option<&'static [&'static str]> {
    match kind {
        "swlhealth_meta" => Some(&["schema", "blocks", "endurance", "report_every", "ops"]),
        "health" => Some(&[
            "seq",
            "ops",
            "host_pages",
            "state",
            "life_used",
            "wear_max",
            "wear_p90",
            "wear_p50",
            "wear_mean",
            "wear_sigma",
            "retired",
            "gc_erases",
            "swl_erases",
            "bet_ecnt",
            "bet_fcnt",
            "tail_rate",
            "mean_rate",
            "unevenness",
            "cache_absorption",
        ]),
        "alert" => Some(&["seq", "ops", "from", "to"]),
        "final" => Some(&["ops", "host_pages", "state", "life_used", "wear_max", "retired"]),
        _ => None,
    }
}

fn num(fields: &[(String, JsonScalar)], key: &str) -> Option<f64> {
    fields.iter().find(|(k, _)| k == key)?.1.as_num()
}

/// Validates a JSONL export. Returns the health-line count, or every
/// violation found.
#[allow(clippy::too_many_lines)]
fn check(text: &str) -> Result<u64, Vec<String>> {
    let mut errors = Vec::new();
    let mut endurance: Option<f64> = None;
    let mut reports = 0u64;
    let mut finals = 0usize;
    let mut lines = 0usize;
    // Last health line's (state, ops, host_pages, wear_max, retired).
    let mut last: Option<(f64, f64, f64, f64, f64)> = None;
    // An alert waiting for the next health line to confirm its `to` state.
    let mut pending_alert: Option<(usize, f64)> = None;
    for (n, line) in text.lines().filter(|l| !l.trim().is_empty()).enumerate() {
        lines += 1;
        let fields = match json::parse_flat(line) {
            Ok(fields) => fields,
            Err(e) => {
                errors.push(format!("line {}: {e}", n + 1));
                continue;
            }
        };
        let Some(kind) = fields
            .iter()
            .find(|(k, _)| k == "kind")
            .and_then(|(_, v)| v.as_str())
            .map(str::to_owned)
        else {
            errors.push(format!("line {}: no \"kind\" field", n + 1));
            continue;
        };
        let Some(required) = required_fields(&kind) else {
            errors.push(format!("line {}: unknown kind {kind:?}", n + 1));
            continue;
        };
        let mut complete = true;
        for key in required {
            if num(&fields, key).is_none() {
                errors.push(format!("line {}: {kind} line missing numeric {key:?}", n + 1));
                complete = false;
            }
        }
        if !complete {
            continue;
        }
        if n == 0 {
            if kind != "swlhealth_meta" {
                errors.push("line 1: export must start with a swlhealth_meta line".to_owned());
            } else {
                let declared = num(&fields, "schema").unwrap_or(0.0);
                if declared < 1.0 || declared > SCHEMA as f64 {
                    errors.push(format!(
                        "line 1: schema {declared}, this swlhealth speaks v1..=v{SCHEMA}"
                    ));
                }
                endurance = num(&fields, "endurance");
            }
        } else if kind == "swlhealth_meta" {
            errors.push(format!("line {}: duplicate swlhealth_meta", n + 1));
        }
        if finals > 0 && kind != "final" {
            errors.push(format!("line {}: content after the final line", n + 1));
        }
        for state_key in ["state", "from", "to"] {
            if let Some(v) = num(&fields, state_key) {
                if !(0.0..=2.0).contains(&v) {
                    errors.push(format!("line {}: {state_key} {v} not in 0..=2", n + 1));
                }
            }
        }
        match kind.as_str() {
            "health" => {
                let seq = num(&fields, "seq").unwrap_or(0.0);
                if seq != reports as f64 {
                    errors.push(format!(
                        "line {}: health seq {seq}, expected {reports}",
                        n + 1
                    ));
                }
                reports += 1;
                let state = num(&fields, "state").unwrap_or(0.0);
                let ops = num(&fields, "ops").unwrap_or(0.0);
                let host_pages = num(&fields, "host_pages").unwrap_or(0.0);
                let wear_max = num(&fields, "wear_max").unwrap_or(0.0);
                let retired = num(&fields, "retired").unwrap_or(0.0);
                if let Some((_, p_ops, p_pages, p_wear, p_retired)) = last {
                    for (label, now, prev) in [
                        ("ops", ops, p_ops),
                        ("host_pages", host_pages, p_pages),
                        ("wear_max", wear_max, p_wear),
                        ("retired", retired, p_retired),
                    ] {
                        if now < prev {
                            errors.push(format!(
                                "line {}: {label} {now} regressed from {prev}",
                                n + 1
                            ));
                        }
                    }
                }
                if let Some((alert_line, to)) = pending_alert.take() {
                    if to != state {
                        errors.push(format!(
                            "line {alert_line}: alert \"to\" {to} but the next health \
                             line carries state {state}"
                        ));
                    }
                }
                let p90 = num(&fields, "wear_p90").unwrap_or(0.0);
                if p90 > wear_max {
                    errors.push(format!("line {}: wear_p90 {p90} > wear_max {wear_max}", n + 1));
                }
                if let Some(absorption) = num(&fields, "cache_absorption") {
                    if !(0.0..=1.0).contains(&absorption) {
                        errors.push(format!(
                            "line {}: cache_absorption {absorption} outside [0, 1]",
                            n + 1
                        ));
                    }
                }
                // The 4-decimal rounding in the export bounds the error.
                if let Some(e) = endurance.filter(|&e| e > 0.0) {
                    let life = num(&fields, "life_used").unwrap_or(0.0);
                    if (life - wear_max / e).abs() > 5e-4 + 1e-9 {
                        errors.push(format!(
                            "line {}: life_used {life} != wear_max/endurance {:.4}",
                            n + 1,
                            wear_max / e
                        ));
                    }
                }
                let band = (
                    num(&fields, "forecast_earliest"),
                    num(&fields, "forecast_central"),
                    num(&fields, "forecast_latest"),
                );
                match band {
                    (Some(lo), Some(mid), Some(hi)) => {
                        if !(lo <= mid && mid <= hi) {
                            errors.push(format!(
                                "line {}: forecast band {lo}..{mid}..{hi} out of order",
                                n + 1
                            ));
                        }
                    }
                    (None, None, None) => {}
                    _ => errors.push(format!(
                        "line {}: forecast fields must appear all together or not at all",
                        n + 1
                    )),
                }
                last = Some((state, ops, host_pages, wear_max, retired));
            }
            "alert" => {
                let from = num(&fields, "from").unwrap_or(0.0);
                let to = num(&fields, "to").unwrap_or(0.0);
                if from == to {
                    errors.push(format!("line {}: alert with from == to == {from}", n + 1));
                }
                if let Some((state, ..)) = last {
                    if from != state {
                        errors.push(format!(
                            "line {}: alert \"from\" {from} but the previous health \
                             line carried state {state}",
                            n + 1
                        ));
                    }
                }
                if pending_alert.is_some() {
                    errors.push(format!("line {}: two alerts without a health line between", n + 1));
                }
                pending_alert = Some((n + 1, to));
            }
            "final" => {
                finals += 1;
                if let Some((state, ..)) = last {
                    let final_state = num(&fields, "state").unwrap_or(0.0);
                    if final_state != state {
                        errors.push(format!(
                            "line {}: final state {final_state} != last health state {state}",
                            n + 1
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    if let Some((alert_line, _)) = pending_alert {
        errors.push(format!("line {alert_line}: alert with no following health line"));
    }
    if lines == 0 {
        errors.push("empty export".to_owned());
    } else if reports == 0 {
        errors.push("no health lines".to_owned());
    }
    if finals == 0 && lines > 0 {
        errors.push("no final line".to_owned());
    } else if finals > 1 {
        errors.push(format!("{finals} final lines, expected exactly one"));
    }
    if errors.is_empty() {
        Ok(reports)
    } else {
        Err(errors)
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &options.check {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("swlhealth: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match check(&text) {
            Ok(reports) => {
                println!("swlhealth: OK — {reports} health report(s), schema v{SCHEMA}");
                ExitCode::SUCCESS
            }
            Err(errors) => {
                for error in &errors {
                    eprintln!("swlhealth: {error}");
                }
                ExitCode::FAILURE
            }
        };
    }
    if let Err(message) = run(&options) {
        eprintln!("swlhealth: {message}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::check;

    const META: &str = "{\"kind\":\"swlhealth_meta\",\"schema\":1,\"blocks\":64,\
                        \"endurance\":24,\"report_every\":1000,\"ops\":4000}";

    fn health(seq: u64, ops: u64, state: u64, wear_max: u64) -> String {
        let life = wear_max as f64 / 24.0;
        format!(
            "{{\"kind\":\"health\",\"seq\":{seq},\"ops\":{ops},\"host_pages\":{ops},\
             \"state\":{state},\"life_used\":{life:.4},\"wear_max\":{wear_max},\
             \"wear_p90\":{p90},\"wear_p50\":1,\"wear_mean\":1.5,\"wear_sigma\":0.5,\
             \"retired\":0,\"gc_erases\":10,\"swl_erases\":2,\"bet_ecnt\":5,\
             \"bet_fcnt\":3,\"tail_rate\":0.01,\"mean_rate\":0.005,\
             \"unevenness\":1.5,\"cache_absorption\":0.25}}",
            p90 = wear_max.saturating_sub(1),
        )
    }

    fn final_line(ops: u64, state: u64, wear_max: u64) -> String {
        let life = wear_max as f64 / 24.0;
        format!(
            "{{\"kind\":\"final\",\"ops\":{ops},\"host_pages\":{ops},\"state\":{state},\
             \"life_used\":{life:.4},\"wear_max\":{wear_max},\"retired\":0}}"
        )
    }

    #[test]
    fn accepts_a_minimal_valid_export() {
        let text = format!(
            "{META}\n{}\n{}\n{}\n",
            health(0, 1000, 0, 3),
            health(1, 2000, 0, 6),
            final_line(2000, 0, 6)
        );
        assert_eq!(check(&text), Ok(2));
    }

    #[test]
    fn accepts_alerts_that_match_their_neighbours() {
        let alert = "{\"kind\":\"alert\",\"seq\":1,\"ops\":2000,\"from\":0,\"to\":1}";
        let text = format!(
            "{META}\n{}\n{alert}\n{}\n{}\n",
            health(0, 1000, 0, 3),
            health(1, 2000, 1, 18),
            final_line(2000, 1, 18)
        );
        assert_eq!(check(&text), Ok(2));
    }

    #[test]
    fn rejects_alert_state_mismatches() {
        // `to` disagrees with the next health line.
        let alert = "{\"kind\":\"alert\",\"seq\":1,\"ops\":2000,\"from\":0,\"to\":2}";
        let text = format!(
            "{META}\n{}\n{alert}\n{}\n{}\n",
            health(0, 1000, 0, 3),
            health(1, 2000, 1, 18),
            final_line(2000, 1, 18)
        );
        assert!(check(&text).is_err());
        // `from` disagrees with the previous health line.
        let alert = "{\"kind\":\"alert\",\"seq\":1,\"ops\":2000,\"from\":1,\"to\":1}";
        let text = format!(
            "{META}\n{}\n{alert}\n{}\n{}\n",
            health(0, 1000, 0, 3),
            health(1, 2000, 1, 18),
            final_line(2000, 1, 18)
        );
        assert!(check(&text).is_err());
    }

    #[test]
    fn rejects_wear_regression_and_seq_gaps() {
        let regressed = format!(
            "{META}\n{}\n{}\n{}\n",
            health(0, 1000, 0, 6),
            health(1, 2000, 0, 3),
            final_line(2000, 0, 3)
        );
        assert!(check(&regressed).is_err());
        let gap = format!(
            "{META}\n{}\n{}\n{}\n",
            health(0, 1000, 0, 3),
            health(2, 2000, 0, 6),
            final_line(2000, 0, 6)
        );
        assert!(check(&gap).is_err());
    }

    #[test]
    fn rejects_life_used_inconsistent_with_endurance() {
        let bad = health(0, 1000, 0, 12).replace("\"life_used\":0.5000", "\"life_used\":0.9000");
        let text = format!("{META}\n{bad}\n{}\n", final_line(1000, 0, 12));
        assert!(check(&text).is_err());
    }

    #[test]
    fn rejects_partial_forecast_bands_and_missing_final() {
        let partial = health(0, 1000, 0, 3)
            .replace(",\"cache_absorption\":0.25}", ",\"cache_absorption\":0.25,\"forecast_central\":500}");
        let text = format!("{META}\n{partial}\n{}\n", final_line(1000, 0, 3));
        assert!(check(&text).is_err());
        assert!(check(&format!("{META}\n{}\n", health(0, 1000, 0, 3))).is_err());
        assert!(check("").is_err());
    }
}
