//! Regenerates **Table 1**: BET RAM size for SLC flash of 128 MB – 4 GB at
//! `k = 0..3`.
//!
//! Pure arithmetic — runs instantly at any scale.

use flash_bench::print_table;
use nand::Geometry;
use swl_core::Bet;

fn main() {
    println!("Table 1: BET size for (large-block) SLC flash memory\n");
    let capacities: [(u64, &str); 6] = [
        (128 << 20, "128MB"),
        (256 << 20, "256MB"),
        (512 << 20, "512MB"),
        (1 << 30, "1GB"),
        (2 << 30, "2GB"),
        (4u64 << 30, "4GB"),
    ];
    let mut rows = Vec::new();
    for k in 0..=3u32 {
        let mut row = vec![format!("k = {k}")];
        for (bytes, _) in capacities {
            let geometry = Geometry::large_block_slc(bytes);
            let bet = Bet::new(geometry.blocks(), k);
            row.push(format!("{}B", bet.ram_bytes()));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("")
        .chain(capacities.iter().map(|(_, label)| *label))
        .collect();
    print_table(&headers, &rows);
    println!("\npaper: 128B..4096B at k=0, halving per k step (matches)");
}
