//! Ablation and robustness study beyond the paper's sweeps.
//!
//! Four questions:
//!
//! 1. **Random vs sequential `findex` reset** — the paper randomises the
//!    scan start after each BET reset but surmises "the design is close to
//!    that in a random selection policy in reality" even without it. Does
//!    randomisation matter?
//! 2. **How cold does data have to be?** — sweep the frozen fraction of
//!    the written footprint and watch the SWL benefit grow with the amount
//!    of pinned data.
//! 3. **Placement granularity** — scatter the footprint in coarser or
//!    finer chunks (more or fewer NFTL virtual blocks per hot region).
//! 4. **Hot-set sharpness** — vary how concentrated writes are.
//!
//! Usage: `ablation [quick|scaled|paper]`

use flash_bench::{print_table, scale_from_args};
use flash_sim::experiments::{first_failure_run, first_failure_run_with};
use flash_sim::{LayerKind, SimError, SimReport};

fn years(report: &SimReport) -> f64 {
    report.first_failure.map(|f| f.years()).unwrap_or(f64::NAN)
}

/// Formats a run result, reporting capacity exhaustion instead of crashing:
/// some ablation corners legitimately over-commit the chip (e.g. very fine
/// placement granularity makes every NFTL virtual block resident).
fn years_or_note(result: &Result<SimReport, SimError>) -> String {
    match result {
        Ok(report) => format!("{:.4}", years(report)),
        Err(_) => "over-committed".to_owned(),
    }
}

fn gain(base: &Result<SimReport, SimError>, swl: &Result<SimReport, SimError>) -> String {
    match (base, swl) {
        (Ok(b), Ok(s)) => format!("{:+.0}%", (years(s) / years(b) - 1.0) * 100.0),
        _ => "-".to_owned(),
    }
}

fn main() {
    let scale = scale_from_args();
    let t100 = |k: u32| Some(scale.swl_config(100, k));
    println!(
        "Ablation study (scale: {} blocks x {} pages, endurance {})\n",
        scale.blocks, scale.pages_per_block, scale.endurance
    );

    // 1. findex randomisation.
    println!("1. randomised vs sequential findex reset (FTL, T=100, k=0)\n");
    let mut rows = Vec::new();
    for (label, randomize) in [("randomised (paper)", true), ("sequential", false)] {
        let config = t100(0).unwrap().with_randomized_reset(randomize);
        let report = first_failure_run(LayerKind::Ftl, Some(config), &scale).unwrap();
        rows.push(vec![
            label.to_owned(),
            format!("{:.4}", years(&report)),
            format!("{:.1}", report.erase_stats.std_dev),
        ]);
    }
    print_table(&["mode", "first failure (y)", "erase dev"], &rows);
    println!("\npaper's surmise: both behave alike (cold data sits anywhere).\n");

    // 2. frozen fraction sweep.
    println!("2. SWL benefit vs frozen (write-once) share of the footprint\n");
    let mut rows = Vec::new();
    for frozen in [0.0, 0.25, 0.5, 0.75, 0.9] {
        let base = first_failure_run_with(LayerKind::Ftl, None, &scale, |s| {
            s.with_frozen_fraction(frozen)
        })
        .unwrap();
        let swl = first_failure_run_with(LayerKind::Ftl, t100(0), &scale, |s| {
            s.with_frozen_fraction(frozen)
        })
        .unwrap();
        rows.push(vec![
            format!("{:.0}%", frozen * 100.0),
            format!("{:.4}", years(&base)),
            format!("{:.4}", years(&swl)),
            format!("{:+.0}%", (years(&swl) / years(&base) - 1.0) * 100.0),
        ]);
    }
    print_table(&["frozen", "baseline (y)", "+SWL (y)", "gain"], &rows);
    println!("\nexpected: no frozen data → nothing for SWL to unlock; gains\ngrow with the pinned share.\n");

    // 3. placement chunk size (NFTL is the sensitive layer).
    println!("3. NFTL sensitivity to placement granularity (chunk pages)\n");
    let mut rows = Vec::new();
    for chunk in [4u64, 16, 64, 256] {
        let base =
            first_failure_run_with(LayerKind::Nftl, None, &scale, |s| s.with_chunk_pages(chunk));
        let swl = first_failure_run_with(LayerKind::Nftl, t100(0), &scale, |s| {
            s.with_chunk_pages(chunk)
        });
        rows.push(vec![
            chunk.to_string(),
            years_or_note(&base),
            years_or_note(&swl),
            gain(&base, &swl),
        ]);
    }
    print_table(&["chunk", "baseline (y)", "+SWL (y)", "gain"], &rows);
    println!(
        "\nfiner placement spreads hot data over more virtual blocks (more\n\
         merges, earlier failure); at the finest granularity every virtual\n\
         block is resident and the block-mapped layout runs out of space —\n\
         a real NFTL deployment limit, reported rather than hidden.\n"
    );

    // 4. hot-set sharpness.
    println!("4. SWL benefit vs write concentration (FTL, k=0)\n");
    let mut rows = Vec::new();
    for (hot_fraction, hot_prob) in [(0.5, 0.6), (0.25, 0.8), (0.125, 0.9), (0.05, 0.95)] {
        let base = first_failure_run_with(LayerKind::Ftl, None, &scale, |s| {
            s.with_hot_set(hot_fraction, hot_prob)
        })
        .unwrap();
        let swl = first_failure_run_with(LayerKind::Ftl, t100(0), &scale, |s| {
            s.with_hot_set(hot_fraction, hot_prob)
        })
        .unwrap();
        rows.push(vec![
            format!("{:.0}% take {:.0}%", hot_fraction * 100.0, hot_prob * 100.0),
            format!("{:.4}", years(&base)),
            format!("{:.4}", years(&swl)),
            format!("{:+.0}%", (years(&swl) / years(&base) - 1.0) * 100.0),
        ]);
    }
    print_table(&["hot set", "baseline (y)", "+SWL (y)", "gain"], &rows);
}
