//! Crash-consistency model checker: exhaustively cut power at **every**
//! operation boundary of a GC/SWL-heavy workload, remount, and verify the
//! recovery contract at each point.
//!
//! For every configuration (FTL/NFTL × SWL on/off × torn/clean cut) the
//! sweep covers all cut points `0..total_ops` and checks:
//!
//! 1. no acked write is lost (the page being written at the cut may read
//!    the new, unacked value — anything else is a violation);
//! 2. the SW Leveler recovered from the NVRAM dual buffer is at most one
//!    checkpoint interval stale;
//! 3. the stack keeps serving writes after remount and the unevenness
//!    level settles below the threshold `T`.
//!
//! Violations are counted and summarised; the exit code is non-zero when
//! any cut point breaks the contract. The integration test
//! `tests/crash_consistency.rs` runs a strided subset of the same checks
//! in CI.
//!
//! Usage: `crashmc [rounds]` (default 16; higher = more cut points)

use std::collections::HashMap;
use std::process::ExitCode;

use flash_bench::print_table;
use flash_sim::{Layer, LayerKind, SimConfig, SimError, TranslationLayer};
use ftl::FtlError;
use nand::{CellKind, FaultPlan, Geometry, NandDevice, NandError};
use nftl::NftlError;
use swl_core::persist::{DualBuffer, PersistError};
use swl_core::{SwLeveler, SwlConfig};

const BLOCKS: u32 = 24;
const PAGES: u32 = 8;
/// Acked writes between SW Leveler checkpoints (one "interval").
const SAVE_EVERY: u64 = 25;

fn device() -> NandDevice {
    NandDevice::new(
        Geometry::new(BLOCKS, PAGES, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    )
}

fn swl_config() -> SwlConfig {
    SwlConfig::new(8, 1).with_seed(7)
}

fn is_power_cut(e: &SimError) -> bool {
    matches!(
        e,
        SimError::Ftl(FtlError::Device(NandError::PowerCut))
            | SimError::Nftl(NftlError::Device(NandError::PowerCut))
    )
}

fn attach(layer: &mut Layer, leveler: SwLeveler) {
    match layer {
        Layer::Ftl(l) => l.attach_swl(leveler),
        Layer::Nftl(l) => l.attach_swl(leveler),
    }
}

/// What the host believes about its own data across the crash.
#[derive(Default)]
struct HostModel {
    acked: HashMap<u64, u64>,
    in_flight: Option<(u64, u64)>,
}

/// Replays the deterministic workload until it completes or the armed
/// power cut fires; returns `Ok(true)` on a cut.
fn replay(
    layer: &mut Layer,
    rounds: u64,
    nvram: &mut DualBuffer,
    model: &mut HostModel,
    saved_ecnts: &mut Vec<u64>,
) -> Result<bool, SimError> {
    let lbas = layer.logical_pages().min(28);
    let mut acked_since_save = 0u64;
    for round in 0..rounds {
        for step in 0..lbas {
            let lba = if step % 3 == 0 {
                step
            } else {
                (round + step) % 4
            };
            let value = (round << 32) | (step << 8) | lba;
            model.in_flight = Some((lba, value));
            match layer.write(lba, value) {
                Ok(()) => {
                    model.acked.insert(lba, value);
                    acked_since_save += 1;
                    if layer.swl().is_some() && acked_since_save >= SAVE_EVERY {
                        let swl = layer.swl().unwrap();
                        nvram.save(swl);
                        saved_ecnts.push(swl.ecnt());
                        acked_since_save = 0;
                    }
                }
                Err(e) if is_power_cut(&e) => return Ok(true),
                Err(e) => return Err(e),
            }
        }
    }
    Ok(false)
}

#[derive(Default)]
struct SweepStats {
    points: u64,
    lost_acked: u64,
    stale_checkpoints: u64,
    resume_failures: u64,
    recovery_errors: u64,
}

/// One crash/remount/verify cycle; violations are recorded, not panicked.
fn check_cut_point(
    kind: LayerKind,
    with_swl: bool,
    rounds: u64,
    cut_at: u64,
    torn: bool,
    stats: &mut SweepStats,
) {
    stats.points += 1;
    let cfg = SimConfig {
        fault: Some(FaultPlan::new(1).with_power_cut(cut_at, torn)),
        ..SimConfig::default()
    };
    let swl = with_swl.then(swl_config);
    let mut layer = Layer::build(kind, device(), swl, &cfg).expect("build");
    let mut nvram = DualBuffer::new();
    let mut model = HostModel::default();
    let mut saved_ecnts = Vec::new();
    match replay(&mut layer, rounds, &mut nvram, &mut model, &mut saved_ecnts) {
        Ok(true) => {}
        Ok(false) | Err(_) => {
            stats.recovery_errors += 1;
            return;
        }
    }

    let mut chip = layer.into_device();
    chip.power_cycle();
    let mut layer = match Layer::mount(kind, chip, &SimConfig::default()) {
        Ok(l) => l,
        Err(_) => {
            stats.recovery_errors += 1;
            return;
        }
    };

    if with_swl {
        // Model a checkpoint torn by the same crash.
        if torn {
            if let Some(slot) = nvram.slot_mut(0) {
                let cut_len = slot.len() / 2;
                slot.truncate(cut_len);
            }
        }
        match nvram.recover() {
            Ok(snapshot) => match snapshot.into_leveler() {
                Ok(leveler) => {
                    let fresh_enough = saved_ecnts
                        .iter()
                        .rev()
                        .take(2)
                        .any(|&e| e == leveler.ecnt());
                    if !fresh_enough {
                        stats.stale_checkpoints += 1;
                    }
                    attach(&mut layer, leveler);
                }
                Err(_) => stats.recovery_errors += 1,
            },
            Err(PersistError::NoValidSnapshot) => {
                if saved_ecnts.len() > 1 || (!torn && !saved_ecnts.is_empty()) {
                    stats.stale_checkpoints += 1;
                }
                attach(&mut layer, SwLeveler::new(BLOCKS, swl_config()).unwrap());
            }
            Err(_) => stats.recovery_errors += 1,
        }
    }

    for (&lba, &value) in &model.acked {
        let got = match layer.read(lba) {
            Ok(g) => g,
            Err(_) => {
                stats.lost_acked += 1;
                continue;
            }
        };
        let in_flight_ok = matches!(model.in_flight, Some((l, v)) if l == lba && got == Some(v));
        if got != Some(value) && !in_flight_ok {
            stats.lost_acked += 1;
        }
    }

    let lbas = layer.logical_pages().min(28);
    for round in 0..3u64 {
        for lba in 0..lbas {
            if layer.write(lba, 0xCAFE_0000 | (round << 8) | lba).is_err() {
                stats.resume_failures += 1;
                return;
            }
        }
    }
    if with_swl && layer.swl().is_some_and(SwLeveler::needs_leveling) {
        stats.resume_failures += 1;
    }
}

fn main() -> ExitCode {
    let rounds: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("rounds must be a number"))
        .unwrap_or(16);

    println!(
        "crashmc: exhaustive power-cut sweep ({BLOCKS} blocks x {PAGES} pages, \
         {rounds} workload rounds)\n"
    );

    let mut rows = Vec::new();
    let mut grand_points = 0u64;
    let mut grand_violations = 0u64;
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        for with_swl in [false, true] {
            // Baseline run without a cut: measures how many operation
            // boundaries the workload exposes.
            let cfg = SimConfig {
                fault: Some(FaultPlan::new(1)),
                ..SimConfig::default()
            };
            let swl = with_swl.then(swl_config);
            let mut layer = Layer::build(kind, device(), swl, &cfg).expect("baseline build");
            let mut nvram = DualBuffer::new();
            let mut model = HostModel::default();
            let mut saved = Vec::new();
            let cut = replay(&mut layer, rounds, &mut nvram, &mut model, &mut saved)
                .expect("baseline replay");
            assert!(!cut, "baseline run must not see a power cut");
            let total = layer.device().fault_ops();

            for torn in [false, true] {
                let mut stats = SweepStats::default();
                for cut_at in 0..total {
                    check_cut_point(kind, with_swl, rounds, cut_at, torn, &mut stats);
                }
                let violations = stats.lost_acked
                    + stats.stale_checkpoints
                    + stats.resume_failures
                    + stats.recovery_errors;
                grand_points += stats.points;
                grand_violations += violations;
                rows.push(vec![
                    kind.to_string(),
                    if with_swl { "on" } else { "off" }.to_owned(),
                    if torn { "torn" } else { "clean" }.to_owned(),
                    stats.points.to_string(),
                    stats.lost_acked.to_string(),
                    stats.stale_checkpoints.to_string(),
                    stats.resume_failures.to_string(),
                    stats.recovery_errors.to_string(),
                ]);
            }
        }
    }

    print_table(
        &[
            "layer", "swl", "cut", "points", "lost", "stale", "resume", "recover",
        ],
        &rows,
    );
    println!("\n{grand_points} cut points checked, {grand_violations} violations");
    if grand_points < 1000 {
        println!("warning: fewer than 1000 cut points — raise the rounds argument");
    }
    if grand_violations == 0 {
        println!("crashmc: OK");
        ExitCode::SUCCESS
    } else {
        println!("crashmc: FAILED");
        ExitCode::FAILURE
    }
}
