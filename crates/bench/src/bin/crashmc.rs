//! Crash-consistency model checker: exhaustively cut power at **every**
//! operation boundary of a GC/SWL-heavy workload, remount, and verify the
//! recovery contract at each point.
//!
//! For every configuration (FTL/NFTL × SWL on/off × torn/clean cut) the
//! sweep covers all cut points `0..total_ops` and checks:
//!
//! 1. no acked write is lost (the page being written at the cut may read
//!    the new, unacked value — anything else is a violation);
//! 2. the SW Leveler recovered from the NVRAM dual buffer is at most one
//!    checkpoint interval stale;
//! 3. the stack keeps serving writes after remount and the unevenness
//!    level settles below the threshold `T`.
//!
//! Violations are counted and summarised; the exit code is non-zero when
//! any cut point breaks the contract. The integration test
//! `tests/crash_consistency.rs` runs a strided subset of the same checks
//! in CI.
//!
//! A second sweep repeats the exercise on a 2-channel striped array driven
//! by span-sized host requests, so power cuts land *mid-stripe*: the lanes
//! that already acked their sub-writes must keep them across the remount,
//! on every channel.
//!
//! A fourth sweep interposes the **service write cache**: host requests go
//! through a cache-enabled `Service` whose flush is the only durability
//! ack. Writes acked only as *accepted* live in RAM until flush-back, so
//! the sweep checks both sides of the service's durability contract —
//! every flush-acked write survives every cut point, and un-acked cached
//! writes really do vanish at some cut points (counted and required, so
//! the lossy side of the contract is asserted, not assumed).
//!
//! A fifth sweep cuts power across the **snapshot plane**: a
//! snapshot-enabled FTL drives creates, a delete, a rollback clone, and an
//! online merge with host writes interleaved between merge steps, with the
//! rail dropping at every device-op boundary — including inside the
//! dual-buffer manifest commits that are each verb's atomic point. After
//! remount the sweep demands: every *acked* `snapshot_create` is still
//! present with its exact frozen image; a verb that was cut mid-commit
//! either fully happened or fully didn't (a rolled-back head must match
//! the old head or the clone image page for page — never a mixture); a
//! mid-merge cut resolves to the origin (snapshot intact, post-begin
//! acked writes kept) or the merged device, never a hybrid; and the
//! refcount identity (`Σ refs == live mappings`) holds after recovery.
//!
//! Usage: `crashmc [rounds]` (default 16; higher = more cut points)

use std::collections::HashMap;
use std::process::ExitCode;

use flash_bench::print_table;
use flash_sim::service::cache::CacheConfig;
use flash_sim::{
    Engine, EngineConfig, Layer, LayerKind, Service, ServiceConfig, SimConfig, SimError,
    StripedLayer, SwlCoordination, TranslationLayer,
};
use flash_trace::TraceEvent;
use ftl::{FtlConfig, FtlError, PageMappedFtl, SnapshotConfig};
use hotid::HotDataConfig;
use nand::{CellKind, ChannelGeometry, FaultPlan, Geometry, NandDevice, NandError};
use nftl::NftlError;
use swl_core::persist::{DualBuffer, PersistError};
use swl_core::{SwLeveler, SwlConfig};

const BLOCKS: u32 = 24;
const PAGES: u32 = 8;
/// Acked writes between SW Leveler checkpoints (one "interval").
const SAVE_EVERY: u64 = 25;
/// Lanes of the striped sweep.
const CHANNELS: u32 = 2;
/// Blocks per lane of the striped sweep.
const LANE_BLOCKS: u32 = 16;
/// Host request size (pages) of the striped sweep — every request spans
/// both channels, so any cut point inside one lands mid-stripe.
const SPAN: u64 = 4;
/// Host queue depth of the threaded-engine sweep: several requests are in
/// flight when the rail cuts, so the recovery contract is checked with
/// writes the host has *not* yet been acked for alongside ones it has.
const ENGINE_QD: usize = 4;
/// Worker threads of the threaded-engine sweep (one per channel).
const ENGINE_THREADS: u32 = 2;
/// Submitted requests between `flush` barriers — the engine host model's
/// ack boundary: everything flushed is acked, everything after is in
/// flight.
const FLUSH_EVERY: u64 = 4;
/// RAM write-cache capacity (pages) of the service sweep — small enough
/// that capacity evictions and watermark batches fire between flushes.
const CACHE_PAGES: usize = 8;

fn device() -> NandDevice {
    NandDevice::new(
        Geometry::new(BLOCKS, PAGES, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    )
}

fn swl_config() -> SwlConfig {
    SwlConfig::new(8, 1).with_seed(7)
}

fn is_power_cut(e: &SimError) -> bool {
    matches!(
        e,
        SimError::Ftl(FtlError::Device(NandError::PowerCut))
            | SimError::Nftl(NftlError::Device(NandError::PowerCut))
    )
}

fn attach(layer: &mut Layer, leveler: SwLeveler) {
    match layer {
        Layer::Ftl(l) => l.attach_swl(leveler),
        Layer::Nftl(l) => l.attach_swl(leveler),
    }
}

/// What the host believes about its own data across the crash.
#[derive(Default)]
struct HostModel {
    acked: HashMap<u64, u64>,
    in_flight: Option<(u64, u64)>,
}

/// Replays the deterministic workload until it completes or the armed
/// power cut fires; returns `Ok(true)` on a cut.
fn replay(
    layer: &mut Layer,
    rounds: u64,
    nvram: &mut DualBuffer,
    model: &mut HostModel,
    saved_ecnts: &mut Vec<u64>,
) -> Result<bool, SimError> {
    let lbas = layer.logical_pages().min(28);
    let mut acked_since_save = 0u64;
    for round in 0..rounds {
        for step in 0..lbas {
            let lba = if step % 3 == 0 {
                step
            } else {
                (round + step) % 4
            };
            let value = (round << 32) | (step << 8) | lba;
            model.in_flight = Some((lba, value));
            match layer.write(lba, value) {
                Ok(()) => {
                    model.acked.insert(lba, value);
                    acked_since_save += 1;
                    if layer.swl().is_some() && acked_since_save >= SAVE_EVERY {
                        let swl = layer.swl().unwrap();
                        nvram.save(swl);
                        saved_ecnts.push(swl.ecnt());
                        acked_since_save = 0;
                    }
                }
                Err(e) if is_power_cut(&e) => return Ok(true),
                Err(e) => return Err(e),
            }
        }
    }
    Ok(false)
}

#[derive(Default)]
struct SweepStats {
    points: u64,
    lost_acked: u64,
    stale_checkpoints: u64,
    resume_failures: u64,
    recovery_errors: u64,
}

/// One crash/remount/verify cycle; violations are recorded, not panicked.
fn check_cut_point(
    kind: LayerKind,
    with_swl: bool,
    rounds: u64,
    cut_at: u64,
    torn: bool,
    stats: &mut SweepStats,
) {
    stats.points += 1;
    let cfg = SimConfig {
        fault: Some(FaultPlan::new(1).with_power_cut(cut_at, torn)),
        ..SimConfig::default()
    };
    let swl = with_swl.then(swl_config);
    let mut layer = Layer::build(kind, device(), swl, &cfg).expect("build");
    let mut nvram = DualBuffer::new();
    let mut model = HostModel::default();
    let mut saved_ecnts = Vec::new();
    match replay(&mut layer, rounds, &mut nvram, &mut model, &mut saved_ecnts) {
        Ok(true) => {}
        Ok(false) | Err(_) => {
            stats.recovery_errors += 1;
            return;
        }
    }

    let mut chip = layer.into_device();
    chip.power_cycle();
    let mut layer = match Layer::mount(kind, chip, &SimConfig::default()) {
        Ok(l) => l,
        Err(_) => {
            stats.recovery_errors += 1;
            return;
        }
    };

    if with_swl {
        // Model a checkpoint torn by the same crash.
        if torn {
            if let Some(slot) = nvram.slot_mut(0) {
                let cut_len = slot.len() / 2;
                slot.truncate(cut_len);
            }
        }
        match nvram.recover() {
            Ok(snapshot) => match snapshot.into_leveler() {
                Ok(leveler) => {
                    let fresh_enough = saved_ecnts
                        .iter()
                        .rev()
                        .take(2)
                        .any(|&e| e == leveler.ecnt());
                    if !fresh_enough {
                        stats.stale_checkpoints += 1;
                    }
                    attach(&mut layer, leveler);
                }
                Err(_) => stats.recovery_errors += 1,
            },
            Err(PersistError::NoValidSnapshot) => {
                if saved_ecnts.len() > 1 || (!torn && !saved_ecnts.is_empty()) {
                    stats.stale_checkpoints += 1;
                }
                attach(&mut layer, SwLeveler::new(BLOCKS, swl_config()).unwrap());
            }
            Err(_) => stats.recovery_errors += 1,
        }
    }

    for (&lba, &value) in &model.acked {
        let got = match layer.read(lba) {
            Ok(g) => g,
            Err(_) => {
                stats.lost_acked += 1;
                continue;
            }
        };
        let in_flight_ok = matches!(model.in_flight, Some((l, v)) if l == lba && got == Some(v));
        if got != Some(value) && !in_flight_ok {
            stats.lost_acked += 1;
        }
    }

    let lbas = layer.logical_pages().min(28);
    for round in 0..3u64 {
        for lba in 0..lbas {
            if layer.write(lba, 0xCAFE_0000 | (round << 8) | lba).is_err() {
                stats.resume_failures += 1;
                return;
            }
        }
    }
    if with_swl && layer.swl().is_some_and(SwLeveler::needs_leveling) {
        stats.resume_failures += 1;
    }
}

fn striped_geometry() -> ChannelGeometry {
    ChannelGeometry::new(CHANNELS, 1, Geometry::new(LANE_BLOCKS, PAGES, 2048))
}

fn striped_build(kind: LayerKind, with_swl: bool, cfg: &SimConfig) -> StripedLayer {
    StripedLayer::build(
        kind,
        striped_geometry(),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
        with_swl.then(swl_config),
        SwlCoordination::PerChannel,
        cfg,
    )
    .expect("striped build")
}

/// Replays span-sized host requests over the striped array until they
/// complete or the armed power cut fires on some lane; `Ok(true)` on a cut.
fn striped_replay(
    striped: &mut StripedLayer,
    rounds: u64,
    model: &mut HostModel,
) -> Result<bool, SimError> {
    let spans = (striped.logical_pages() / SPAN).min(8);
    for round in 0..rounds {
        for i in 0..spans {
            let base = (if i % 3 == 0 { i } else { (round + i) % 2 }) * SPAN;
            for off in 0..SPAN {
                let lba = base + off;
                let value = (round << 32) | (i << 16) | (off << 8) | 0xA5;
                model.in_flight = Some((lba, value));
                match striped.write(lba, value) {
                    Ok(()) => {
                        model.acked.insert(lba, value);
                    }
                    Err(e) if is_power_cut(&e) => return Ok(true),
                    Err(e) => return Err(e),
                }
            }
        }
    }
    Ok(false)
}

/// One striped crash/remount/verify cycle: after the mid-stripe cut, every
/// acked page on every channel must survive the remount, and the array
/// must keep serving writes.
fn check_striped_cut_point(
    kind: LayerKind,
    with_swl: bool,
    rounds: u64,
    cut_at: u64,
    torn: bool,
    stats: &mut SweepStats,
) {
    stats.points += 1;
    let cfg = SimConfig {
        fault: Some(FaultPlan::new(1).with_power_cut(cut_at, torn)),
        ..SimConfig::default()
    };
    let mut striped = striped_build(kind, with_swl, &cfg);
    let mut model = HostModel::default();
    match striped_replay(&mut striped, rounds, &mut model) {
        Ok(true) => {}
        Ok(false) | Err(_) => {
            stats.recovery_errors += 1;
            return;
        }
    }

    let mut devices = striped.into_devices();
    for device in &mut devices {
        // One shared power rail: the cut that fired on one lane is consumed
        // for the whole array, so disarm the lanes it never reached.
        device.disarm_power_cut();
        device.power_cycle();
    }
    let mut striped = match StripedLayer::mount(
        kind,
        striped_geometry(),
        devices,
        SwlCoordination::PerChannel,
        &SimConfig::default(),
    ) {
        Ok(s) => s,
        Err(_) => {
            stats.recovery_errors += 1;
            return;
        }
    };

    for (&lba, &value) in &model.acked {
        let got = match striped.read(lba) {
            Ok(g) => g,
            Err(_) => {
                stats.lost_acked += 1;
                continue;
            }
        };
        let in_flight_ok = matches!(model.in_flight, Some((l, v)) if l == lba && got == Some(v));
        if got != Some(value) && !in_flight_ok {
            stats.lost_acked += 1;
        }
    }

    let lbas = striped.logical_pages().min(SPAN * 8);
    for round in 0..2u64 {
        for lba in 0..lbas {
            if striped.write(lba, 0xD00D_0000 | (round << 8) | lba).is_err() {
                stats.resume_failures += 1;
                return;
            }
        }
    }
}

fn engine_build(kind: LayerKind, with_swl: bool, cfg: &SimConfig) -> Engine {
    Engine::new(
        kind,
        striped_geometry(),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
        with_swl.then(swl_config),
        SwlCoordination::PerChannel,
        cfg,
        EngineConfig::default()
            .with_threads(ENGINE_THREADS)
            .with_queue_depth(ENGINE_QD),
    )
    .expect("engine build")
}

/// Host model of the queue-depth-`ENGINE_QD` engine run. The engine writes
/// its own page tokens (one global counter, incremented per page in
/// submission order), so the model mirrors that counter to know which
/// value every submitted page will carry.
#[derive(Default)]
struct EngineModel {
    /// Writes acknowledged by a successful `flush`: these MUST survive.
    acked: HashMap<u64, u64>,
    /// Writes submitted since the last successful `flush`, in order: the
    /// host holds no ack for them, so after a crash each page may read any
    /// of its in-flight values or the last acked one.
    pending: Vec<(u64, u64)>,
    next_token: u64,
}

impl EngineModel {
    fn ack_pending(&mut self) {
        for (lba, value) in self.pending.drain(..) {
            self.acked.insert(lba, value);
        }
    }
}

/// Replays span-sized host requests through the threaded engine with up to
/// `ENGINE_QD` requests in flight, flushing every [`FLUSH_EVERY`] requests;
/// `Ok(true)` when the armed power cut surfaces.
fn engine_replay(
    engine: &mut Engine,
    rounds: u64,
    model: &mut EngineModel,
) -> Result<bool, SimError> {
    let spans = (engine.logical_pages() / SPAN).min(8);
    let mut at_ns = 0u64;
    let mut since_flush = 0u64;
    for round in 0..rounds {
        for i in 0..spans {
            let base = (if i % 3 == 0 { i } else { (round + i) % 2 }) * SPAN;
            at_ns += 1;
            for off in 0..SPAN {
                model.next_token += 1;
                model.pending.push((base + off, model.next_token));
            }
            match engine.submit(TraceEvent::write_span(at_ns, base, SPAN as u32)) {
                Ok(()) => {}
                Err(e) if is_power_cut(&e) => return Ok(true),
                Err(e) => return Err(e),
            }
            since_flush += 1;
            if since_flush >= FLUSH_EVERY {
                since_flush = 0;
                match engine.flush() {
                    Ok(()) => model.ack_pending(),
                    Err(e) if is_power_cut(&e) => return Ok(true),
                    Err(e) => return Err(e),
                }
            }
        }
    }
    match engine.flush() {
        Ok(()) => model.ack_pending(),
        Err(e) if is_power_cut(&e) => return Ok(true),
        Err(e) => return Err(e),
    }
    Ok(false)
}

/// One threaded-engine crash/remount/verify cycle: the cut lands with
/// several host requests in flight; the shared rail then disarms every
/// lane. After remount, every *acked* write must read back — an lba with
/// in-flight writes may also read any of those unacked candidates, and the
/// lanes must keep serving writes.
fn check_engine_cut_point(
    kind: LayerKind,
    with_swl: bool,
    rounds: u64,
    cut_at: u64,
    torn: bool,
    stats: &mut SweepStats,
) {
    stats.points += 1;
    let cfg = SimConfig {
        fault: Some(FaultPlan::new(1).with_power_cut(cut_at, torn)),
        ..SimConfig::default()
    };
    let mut engine = engine_build(kind, with_swl, &cfg);
    let mut model = EngineModel::default();
    match engine_replay(&mut engine, rounds, &mut model) {
        Ok(true) => {}
        Ok(false) | Err(_) => {
            stats.recovery_errors += 1;
            return;
        }
    }

    let mut devices = engine.into_devices();
    for device in &mut devices {
        // Shared power rail: the cut that fired on one lane took the whole
        // array down, so disarm the lanes it never reached.
        device.disarm_power_cut();
        device.power_cycle();
    }
    let geometry = striped_geometry();
    let mut lanes = Vec::with_capacity(devices.len());
    for device in devices {
        match Layer::mount(kind, device, &SimConfig::default()) {
            Ok(lane) => lanes.push(lane),
            Err(_) => {
                stats.recovery_errors += 1;
                return;
            }
        }
    }

    let mut candidates: HashMap<u64, Vec<u64>> = HashMap::new();
    for &(lba, value) in &model.pending {
        candidates.entry(lba).or_default().push(value);
    }
    for (&lba, &value) in &model.acked {
        let lane = geometry.channel_of(lba) as usize;
        let got = match lanes[lane].read(geometry.lane_lba(lba)) {
            Ok(g) => g,
            Err(_) => {
                stats.lost_acked += 1;
                continue;
            }
        };
        let in_flight_ok = candidates
            .get(&lba)
            .is_some_and(|values| values.iter().any(|&v| got == Some(v)));
        if got != Some(value) && !in_flight_ok {
            stats.lost_acked += 1;
        }
    }

    let lbas = (lanes[0].logical_pages() * u64::from(CHANNELS)).min(SPAN * 8);
    for round in 0..2u64 {
        for lba in 0..lbas {
            let lane = geometry.channel_of(lba) as usize;
            if lanes[lane]
                .write(geometry.lane_lba(lba), 0xBEEF_0000 | (round << 8) | lba)
                .is_err()
            {
                stats.resume_failures += 1;
                return;
            }
        }
    }
}

fn service_build(kind: LayerKind, with_swl: bool, cfg: &SimConfig) -> Service {
    // An eager admission threshold so the small cache absorbs the
    // workload's hot spans within a couple of rewrites.
    let hot = HotDataConfig {
        hot_threshold: 2,
        ..HotDataConfig::default()
    };
    Service::build(
        kind,
        striped_geometry(),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
        with_swl.then(swl_config),
        SwlCoordination::PerChannel,
        cfg,
        ServiceConfig::default()
            .with_engine(
                EngineConfig::default()
                    .with_threads(ENGINE_THREADS)
                    .with_queue_depth(ENGINE_QD),
            )
            .with_cache(CacheConfig::sized(CACHE_PAGES).with_hot(hot)),
    )
    .expect("service build")
}

/// Host model of the served-with-cache run. The client supplies page
/// values, so no token mirroring is needed: `acked` holds writes covered
/// by a successful `flush` (these MUST survive), `pending` the writes
/// acked only as *accepted* since then — the RAM cache makes losing those
/// the common case, which the sweep counts to prove the lossy side of the
/// contract is exercised.
#[derive(Default)]
struct ServiceModel {
    acked: HashMap<u64, u64>,
    pending: Vec<(u64, u64)>,
}

impl ServiceModel {
    fn ack_pending(&mut self) {
        for (lba, value) in self.pending.drain(..) {
            self.acked.insert(lba, value);
        }
    }
}

/// Replays span-sized host writes through the cache-enabled service,
/// flushing every [`FLUSH_EVERY`] requests; `Ok(true)` when the armed
/// power cut surfaces. Cache-absorbed writes touch no device op, so cut
/// points land only on real flash traffic (flush-backs, evictions, GC).
fn service_replay(
    service: &mut Service,
    rounds: u64,
    model: &mut ServiceModel,
) -> Result<bool, SimError> {
    let spans = (service.logical_pages() / SPAN).min(8);
    let mut since_flush = 0u64;
    for round in 0..rounds {
        for i in 0..spans {
            let base = (if i % 3 == 0 { i } else { (round + i) % 2 }) * SPAN;
            let values: Vec<u64> = (0..SPAN)
                .map(|off| (round << 32) | (i << 16) | (off << 8) | 0x5C)
                .collect();
            for (off, &value) in values.iter().enumerate() {
                model.pending.push((base + off as u64, value));
            }
            match service.write(base, &values) {
                Ok(()) => {}
                Err(e) if is_power_cut(&e) => return Ok(true),
                Err(e) => return Err(e),
            }
            since_flush += 1;
            if since_flush >= FLUSH_EVERY {
                since_flush = 0;
                match service.flush() {
                    Ok(()) => model.ack_pending(),
                    Err(e) if is_power_cut(&e) => return Ok(true),
                    Err(e) => return Err(e),
                }
            }
        }
    }
    match service.flush() {
        Ok(()) => model.ack_pending(),
        Err(e) if is_power_cut(&e) => return Ok(true),
        Err(e) => return Err(e),
    }
    Ok(false)
}

/// One service crash/remount/verify cycle: the cut lands with dirty cache
/// entries and queued engine writes in flight. Teardown drops the RAM
/// cache (exactly what a power cut does), the shared rail disarms every
/// lane, and after remount every *flush-acked* write must read back —
/// newer un-acked candidates are also legal. Un-acked writes whose value
/// is nowhere to be found are counted in `vanished`, not as violations:
/// the contract says they *may* vanish, and the sweep requires that some
/// actually do.
fn check_service_cut_point(
    kind: LayerKind,
    with_swl: bool,
    rounds: u64,
    cut_at: u64,
    torn: bool,
    stats: &mut SweepStats,
    vanished: &mut u64,
) {
    stats.points += 1;
    let cfg = SimConfig {
        fault: Some(FaultPlan::new(1).with_power_cut(cut_at, torn)),
        ..SimConfig::default()
    };
    let mut service = service_build(kind, with_swl, &cfg);
    let mut model = ServiceModel::default();
    match service_replay(&mut service, rounds, &mut model) {
        Ok(true) => {}
        Ok(false) | Err(_) => {
            stats.recovery_errors += 1;
            return;
        }
    }

    let mut devices = service.into_devices();
    for device in &mut devices {
        // Shared power rail: the cut that fired on one lane took the whole
        // array down, so disarm the lanes it never reached.
        device.disarm_power_cut();
        device.power_cycle();
    }
    let geometry = striped_geometry();
    let mut lanes = Vec::with_capacity(devices.len());
    for device in devices {
        match Layer::mount(kind, device, &SimConfig::default()) {
            Ok(lane) => lanes.push(lane),
            Err(_) => {
                stats.recovery_errors += 1;
                return;
            }
        }
    }

    let mut candidates: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut last_pending: HashMap<u64, u64> = HashMap::new();
    for &(lba, value) in &model.pending {
        candidates.entry(lba).or_default().push(value);
        last_pending.insert(lba, value);
    }
    for (&lba, &value) in &model.acked {
        let lane = geometry.channel_of(lba) as usize;
        let got = match lanes[lane].read(geometry.lane_lba(lba)) {
            Ok(g) => g,
            Err(_) => {
                stats.lost_acked += 1;
                continue;
            }
        };
        let in_flight_ok = candidates
            .get(&lba)
            .is_some_and(|values| values.iter().any(|&v| got == Some(v)));
        if got != Some(value) && !in_flight_ok {
            stats.lost_acked += 1;
        }
    }
    for (&lba, &value) in &last_pending {
        let lane = geometry.channel_of(lba) as usize;
        if let Ok(got) = lanes[lane].read(geometry.lane_lba(lba)) {
            if got != Some(value) {
                *vanished += 1;
            }
        }
    }

    let lbas = (lanes[0].logical_pages() * u64::from(CHANNELS)).min(SPAN * 8);
    for round in 0..2u64 {
        for lba in 0..lbas {
            let lane = geometry.channel_of(lba) as usize;
            if lanes[lane]
                .write(geometry.lane_lba(lba), 0xFACE_0000 | (round << 8) | lba)
                .is_err()
            {
                stats.resume_failures += 1;
                return;
            }
        }
    }
}

/// Blocks per manifest buffer of the snapshot sweep. Three keep the
/// workload's epoch lists (two creates, a clone, a merge splice) and the
/// post-recovery resume snapshot inside one buffer on the 8-page geometry.
const SNAP_MANIFEST_BLOCKS: u32 = 3;
/// Logical pages the snapshot sweep touches.
const SNAP_LBAS: u64 = 24;

fn snap_ftl_config() -> FtlConfig {
    FtlConfig::new()
        .with_overprovision_blocks(2)
        .with_snapshots(SnapshotConfig::new().with_manifest_blocks(SNAP_MANIFEST_BLOCKS))
}

fn is_ftl_power_cut(e: &FtlError) -> bool {
    matches!(e, FtlError::Device(NandError::PowerCut))
}

/// A snapshot verb whose atomic point (the manifest commit) the cut may
/// have landed inside: recovery is allowed to show the verb fully done or
/// fully undone, nothing in between.
enum PendingVerb {
    Create { id: u64 },
    Delete { id: u64 },
    Clone { id: u64, old_head: HashMap<u64, u64> },
    /// `merge_begin` submitted — both outcomes resolve to the origin.
    MergeBegin,
    /// `merge_commit` submitted — origin if the snapshot survived the cut,
    /// merged if it is gone.
    MergeCommit,
}

/// RAM state of an acked online merge (begin acked, commit not yet).
struct MergeModel {
    id: u64,
    /// Acked host writes made after `merge_begin`: they beat the snapshot
    /// image on the merged branch and are ordinary acked writes on the
    /// origin branch.
    post_begin: HashMap<u64, u64>,
}

/// What the host believes across the snapshot-sweep crash.
#[derive(Default)]
struct SnapModel {
    acked: HashMap<u64, u64>,
    in_flight: Option<(u64, u64)>,
    /// Acked snapshots in creation order: id → frozen image.
    snaps: Vec<(u64, HashMap<u64, u64>)>,
    pending: Option<PendingVerb>,
    merging: Option<MergeModel>,
}

impl SnapModel {
    fn snapshot(&self, id: u64) -> Option<&HashMap<u64, u64>> {
        self.snaps.iter().find(|(i, _)| *i == id).map(|(_, img)| img)
    }

    /// The head image of the *merged* branch: acked overlaid with the
    /// snapshot image, post-begin writes winning both.
    fn merged_image(&self) -> HashMap<u64, u64> {
        let m = self.merging.as_ref().expect("merge in flight");
        let image = self.snapshot(m.id).expect("merge target is acked");
        let mut merged = self.acked.clone();
        for (&lba, &value) in image {
            if !m.post_begin.contains_key(&lba) {
                merged.insert(lba, value);
            }
        }
        merged
    }
}

/// One host write through the snapshot-sweep FTL; `Ok(true)` on a cut.
fn snap_write(
    ftl: &mut PageMappedFtl,
    model: &mut SnapModel,
    lba: u64,
    value: u64,
) -> Result<bool, FtlError> {
    model.in_flight = Some((lba, value));
    match ftl.write(lba, value) {
        Ok(()) => {
            model.acked.insert(lba, value);
            if let Some(m) = model.merging.as_mut() {
                m.post_begin.insert(lba, value);
            }
            Ok(false)
        }
        Err(e) if is_ftl_power_cut(&e) => Ok(true),
        Err(e) => Err(e),
    }
}

/// The deterministic snapshot workload: wear-building writes, two creates,
/// a divergence, a delete, a rollback clone, an online merge with writes
/// interleaved between merge steps, then more writes. `Ok(true)` on a cut.
fn snapshot_replay(
    ftl: &mut PageMappedFtl,
    rounds: u64,
    model: &mut SnapModel,
) -> Result<bool, FtlError> {
    let mut value = 0u64;
    // Phase A: the hot/cold mix of the single-device sweep, scaled by
    // `rounds` so GC and SWL interleave with everything that follows.
    for round in 0..rounds.div_ceil(4).max(2) {
        for step in 0..SNAP_LBAS {
            let lba = if step % 3 == 0 { step } else { (round + step) % 4 };
            value += 1;
            if snap_write(ftl, model, lba, value)? {
                return Ok(true);
            }
        }
    }

    // Helper-free verb pattern: arm `pending`, call, settle the model.
    macro_rules! verb {
        ($pending:expr, $call:expr, $on_ok:expr) => {{
            model.pending = Some($pending);
            match $call {
                Ok(()) => {
                    model.pending = None;
                    #[allow(clippy::redundant_closure_call)]
                    $on_ok(model);
                }
                Err(e) if is_ftl_power_cut(&e) => return Ok(true),
                Err(e) => return Err(e),
            }
        }};
    }

    verb!(
        PendingVerb::Create { id: 1 },
        ftl.snapshot_create(1),
        |m: &mut SnapModel| m.snaps.push((1, m.acked.clone()))
    );

    // Phase B: diverge half the space away from snapshot 1.
    for step in 0..SNAP_LBAS / 2 {
        value += 1;
        if snap_write(ftl, model, step * 2, value)? {
            return Ok(true);
        }
    }

    verb!(
        PendingVerb::Create { id: 2 },
        ftl.snapshot_create(2),
        |m: &mut SnapModel| m.snaps.push((2, m.acked.clone()))
    );

    // Phase C: diverge the other half.
    for step in 0..SNAP_LBAS / 2 {
        value += 1;
        if snap_write(ftl, model, step * 2 + 1, value)? {
            return Ok(true);
        }
    }

    verb!(
        PendingVerb::Delete { id: 2 },
        ftl.snapshot_delete(2),
        |m: &mut SnapModel| m.snaps.retain(|(i, _)| *i != 2)
    );

    verb!(
        PendingVerb::Clone {
            id: 1,
            old_head: model.acked.clone(),
        },
        ftl.snapshot_clone(1),
        |m: &mut SnapModel| m.acked = m.snapshot(1).expect("snapshot 1 acked").clone()
    );

    // Phase D: diverge away from the restored image again.
    for step in 0..SNAP_LBAS {
        if step % 3 == 1 {
            continue;
        }
        value += 1;
        if snap_write(ftl, model, step, value)? {
            return Ok(true);
        }
    }

    // Online merge of snapshot 1 with host writes racing the cursor.
    verb!(PendingVerb::MergeBegin, ftl.merge_begin(1), |m: &mut SnapModel| {
        m.merging = Some(MergeModel {
            id: 1,
            post_begin: HashMap::new(),
        })
    });
    value += 1;
    if snap_write(ftl, model, 2, value)? {
        return Ok(true);
    }
    // Merge steps are pure RAM — no device op, so no cut can land in them.
    ftl.merge_step(SNAP_LBAS / 3)?;
    value += 1;
    if snap_write(ftl, model, 9, value)? {
        return Ok(true);
    }
    while !ftl.merge_step(SNAP_LBAS / 3)? {}
    verb!(PendingVerb::MergeCommit, ftl.merge_commit(), |m: &mut SnapModel| {
        let merged = m.merged_image();
        let id = m.merging.take().expect("merge in flight").id;
        m.acked = merged;
        m.snaps.retain(|(i, _)| *i != id);
    });

    // Phase E: keep writing on the merged device.
    for step in 0..SNAP_LBAS {
        value += 1;
        if snap_write(ftl, model, step, value)? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Does the remounted head match `image` exactly (the in-flight write may
/// read its new value instead)?
fn head_matches(
    ftl: &mut PageMappedFtl,
    image: &HashMap<u64, u64>,
    in_flight: Option<(u64, u64)>,
) -> bool {
    for lba in 0..SNAP_LBAS {
        let got = match ftl.read(lba) {
            Ok(g) => g,
            Err(_) => return false,
        };
        let in_flight_ok = matches!(in_flight, Some((l, v)) if l == lba && got == Some(v));
        if got != image.get(&lba).copied() && !in_flight_ok {
            return false;
        }
    }
    true
}

/// Does remounted snapshot `id` match its frozen image exactly?
fn snapshot_matches(ftl: &mut PageMappedFtl, id: u64, image: &HashMap<u64, u64>) -> bool {
    for lba in 0..SNAP_LBAS {
        match ftl.read_snapshot(id, lba) {
            Ok(got) if got == image.get(&lba).copied() => {}
            _ => return false,
        }
    }
    true
}

/// One snapshot-sweep crash/remount/verify cycle (see the module docs'
/// fifth-sweep contract).
fn check_snapshot_cut_point(
    with_swl: bool,
    rounds: u64,
    cut_at: u64,
    torn: bool,
    stats: &mut SweepStats,
) {
    stats.points += 1;
    let chip = device().with_fault_plan(FaultPlan::new(1).with_power_cut(cut_at, torn));
    let config = snap_ftl_config();
    let mut ftl = if with_swl {
        PageMappedFtl::with_swl(chip, config, swl_config()).expect("snapshot build")
    } else {
        PageMappedFtl::new(chip, config).expect("snapshot build")
    };
    let mut model = SnapModel::default();
    match snapshot_replay(&mut ftl, rounds, &mut model) {
        Ok(true) => {}
        Ok(false) | Err(_) => {
            stats.recovery_errors += 1;
            return;
        }
    }

    let mut chip = ftl.into_device();
    chip.power_cycle();
    let mut ftl = match PageMappedFtl::mount(chip, snap_ftl_config()) {
        Ok(f) => f,
        Err(_) => {
            stats.recovery_errors += 1;
            return;
        }
    };

    // Refcount identity after recovery: Σ refs == live mappings (no merge
    // survives a crash, so no pending releases either).
    match ftl.snapshot_audit() {
        Some(audit)
            if audit.refcount_sum == audit.mapping_count && audit.pending_merge == 0 => {}
        _ => {
            stats.recovery_errors += 1;
            return;
        }
    }

    let ids = ftl.snapshot_ids();

    // Every acked snapshot must still exist with its exact frozen image —
    // unless the cut landed inside the verb that was removing it.
    for (id, image) in &model.snaps {
        let removable = match &model.pending {
            Some(PendingVerb::Delete { id: d }) => d == id,
            Some(PendingVerb::MergeCommit) => {
                model.merging.as_ref().is_some_and(|m| m.id == *id)
            }
            _ => false,
        };
        if !ids.contains(id) {
            if !removable {
                stats.lost_acked += 1;
            }
            continue;
        }
        if !snapshot_matches(&mut ftl, *id, image) {
            stats.lost_acked += 1;
        }
    }
    // No snapshot the host never acked may appear — except the one whose
    // create was cut mid-commit, which must then carry the exact image.
    for &id in &ids {
        if model.snaps.iter().any(|(i, _)| *i == id) {
            continue;
        }
        match &model.pending {
            Some(PendingVerb::Create { id: c }) if *c == id => {
                if !snapshot_matches(&mut ftl, id, &model.acked) {
                    stats.lost_acked += 1;
                }
            }
            _ => stats.recovery_errors += 1,
        }
    }

    // The head must match exactly one legal full image — mixtures are the
    // hybrid states the manifest commit point exists to rule out.
    let head_ok = match (&model.pending, &model.merging) {
        // Mid-merge (or mid-begin/mid-commit): the snapshot's survival
        // picks the branch, and the head must match that branch wholly.
        (_, Some(m)) => {
            if ids.contains(&m.id) {
                head_matches(&mut ftl, &model.acked, model.in_flight)
            } else {
                head_matches(&mut ftl, &model.merged_image(), model.in_flight)
            }
        }
        // Mid-clone: old head or clone image, never a page-wise mixture.
        (Some(PendingVerb::Clone { id, old_head }), None) => {
            let image = model.snapshot(*id).expect("clone target is acked").clone();
            head_matches(&mut ftl, old_head, model.in_flight)
                || head_matches(&mut ftl, &image, model.in_flight)
        }
        _ => head_matches(&mut ftl, &model.acked, model.in_flight),
    };
    if !head_ok {
        stats.lost_acked += 1;
    }

    // The device keeps serving: plain writes and a fresh snapshot cycle.
    for round in 0..2u64 {
        for lba in 0..SNAP_LBAS {
            if ftl.write(lba, 0x50AC_0000 | (round << 8) | lba).is_err() {
                stats.resume_failures += 1;
                return;
            }
        }
    }
    let resumed = ftl.snapshot_create(99).is_ok()
        && ftl.read_snapshot(99, 0).is_ok_and(|got| got == ftl.read(0).unwrap_or(None))
        && ftl.snapshot_delete(99).is_ok();
    if !resumed {
        stats.resume_failures += 1;
    }
}

fn main() -> ExitCode {
    let rounds: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("rounds must be a number"))
        .unwrap_or(16);

    println!(
        "crashmc: exhaustive power-cut sweep ({BLOCKS} blocks x {PAGES} pages, \
         {rounds} workload rounds)\n"
    );

    let mut rows = Vec::new();
    let mut grand_points = 0u64;
    let mut grand_violations = 0u64;
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        for with_swl in [false, true] {
            // Baseline run without a cut: measures how many operation
            // boundaries the workload exposes.
            let cfg = SimConfig {
                fault: Some(FaultPlan::new(1)),
                ..SimConfig::default()
            };
            let swl = with_swl.then(swl_config);
            let mut layer = Layer::build(kind, device(), swl, &cfg).expect("baseline build");
            let mut nvram = DualBuffer::new();
            let mut model = HostModel::default();
            let mut saved = Vec::new();
            let cut = replay(&mut layer, rounds, &mut nvram, &mut model, &mut saved)
                .expect("baseline replay");
            assert!(!cut, "baseline run must not see a power cut");
            let total = layer.device().fault_ops();

            for torn in [false, true] {
                let mut stats = SweepStats::default();
                for cut_at in 0..total {
                    check_cut_point(kind, with_swl, rounds, cut_at, torn, &mut stats);
                }
                let violations = stats.lost_acked
                    + stats.stale_checkpoints
                    + stats.resume_failures
                    + stats.recovery_errors;
                grand_points += stats.points;
                grand_violations += violations;
                rows.push(vec![
                    kind.to_string(),
                    if with_swl { "on" } else { "off" }.to_owned(),
                    if torn { "torn" } else { "clean" }.to_owned(),
                    stats.points.to_string(),
                    stats.lost_acked.to_string(),
                    stats.stale_checkpoints.to_string(),
                    stats.resume_failures.to_string(),
                    stats.recovery_errors.to_string(),
                ]);
            }
        }
    }

    // Multi-channel: the same exhaustive sweep over the 2-channel striped
    // array, every cut landing mid-stripe.
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        for with_swl in [false, true] {
            let cfg = SimConfig {
                fault: Some(FaultPlan::new(1)),
                ..SimConfig::default()
            };
            let mut striped = striped_build(kind, with_swl, &cfg);
            let mut model = HostModel::default();
            let cut = striped_replay(&mut striped, rounds, &mut model)
                .expect("striped baseline replay");
            assert!(!cut, "striped baseline run must not see a power cut");
            let total = striped
                .lanes()
                .iter()
                .map(|lane| lane.device().fault_ops())
                .max()
                .unwrap_or(0);

            for torn in [false, true] {
                let mut stats = SweepStats::default();
                for cut_at in 0..total {
                    check_striped_cut_point(kind, with_swl, rounds, cut_at, torn, &mut stats);
                }
                let violations = stats.lost_acked
                    + stats.stale_checkpoints
                    + stats.resume_failures
                    + stats.recovery_errors;
                grand_points += stats.points;
                grand_violations += violations;
                rows.push(vec![
                    format!("{kind}\u{d7}{CHANNELS}ch"),
                    if with_swl { "on" } else { "off" }.to_owned(),
                    if torn { "torn" } else { "clean" }.to_owned(),
                    stats.points.to_string(),
                    stats.lost_acked.to_string(),
                    stats.stale_checkpoints.to_string(),
                    stats.resume_failures.to_string(),
                    stats.recovery_errors.to_string(),
                ]);
            }
        }
    }

    // Threaded engine: the same mid-stripe cuts, but with `ENGINE_QD` host
    // requests in flight on `ENGINE_THREADS` real worker threads when the
    // shared rail drops — acked (flushed) writes must survive; in-flight
    // ones may land or not.
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        for with_swl in [false, true] {
            let cfg = SimConfig {
                fault: Some(FaultPlan::new(1)),
                ..SimConfig::default()
            };
            let mut engine = engine_build(kind, with_swl, &cfg);
            let mut model = EngineModel::default();
            let cut =
                engine_replay(&mut engine, rounds, &mut model).expect("engine baseline replay");
            assert!(!cut, "engine baseline run must not see a power cut");
            let total = engine
                .into_devices()
                .iter()
                .map(|device| device.fault_ops())
                .max()
                .unwrap_or(0);

            for torn in [false, true] {
                let mut stats = SweepStats::default();
                for cut_at in 0..total {
                    check_engine_cut_point(kind, with_swl, rounds, cut_at, torn, &mut stats);
                }
                let violations = stats.lost_acked
                    + stats.stale_checkpoints
                    + stats.resume_failures
                    + stats.recovery_errors;
                grand_points += stats.points;
                grand_violations += violations;
                rows.push(vec![
                    format!("{kind}\u{d7}{CHANNELS}ch qd{ENGINE_QD}"),
                    if with_swl { "on" } else { "off" }.to_owned(),
                    if torn { "torn" } else { "clean" }.to_owned(),
                    stats.points.to_string(),
                    stats.lost_acked.to_string(),
                    stats.stale_checkpoints.to_string(),
                    stats.resume_failures.to_string(),
                    stats.recovery_errors.to_string(),
                ]);
            }
        }
    }

    // Service write cache: the same mid-stripe cuts with the RAM cache
    // interposed — flush is the only durability ack, so the sweep checks
    // flush-acked survival AND that un-acked cached writes really vanish.
    let mut vanished_unacked = 0u64;
    for kind in [LayerKind::Ftl, LayerKind::Nftl] {
        for with_swl in [false, true] {
            let cfg = SimConfig {
                fault: Some(FaultPlan::new(1)),
                ..SimConfig::default()
            };
            let mut service = service_build(kind, with_swl, &cfg);
            let mut model = ServiceModel::default();
            let cut =
                service_replay(&mut service, rounds, &mut model).expect("service baseline replay");
            assert!(!cut, "service baseline run must not see a power cut");
            let total = service
                .into_devices()
                .iter()
                .map(|device| device.fault_ops())
                .max()
                .unwrap_or(0);

            for torn in [false, true] {
                let mut stats = SweepStats::default();
                for cut_at in 0..total {
                    check_service_cut_point(
                        kind,
                        with_swl,
                        rounds,
                        cut_at,
                        torn,
                        &mut stats,
                        &mut vanished_unacked,
                    );
                }
                let violations = stats.lost_acked
                    + stats.stale_checkpoints
                    + stats.resume_failures
                    + stats.recovery_errors;
                grand_points += stats.points;
                grand_violations += violations;
                rows.push(vec![
                    format!("{kind}\u{d7}{CHANNELS}ch cache"),
                    if with_swl { "on" } else { "off" }.to_owned(),
                    if torn { "torn" } else { "clean" }.to_owned(),
                    stats.points.to_string(),
                    stats.lost_acked.to_string(),
                    stats.stale_checkpoints.to_string(),
                    stats.resume_failures.to_string(),
                    stats.recovery_errors.to_string(),
                ]);
            }
        }
    }

    // Snapshot plane: exhaustive cuts across creates, a delete, a rollback
    // clone, and an online merge — every manifest commit is a verb's atomic
    // point, so recovery must land on a whole pre- or post-verb image.
    for with_swl in [false, true] {
        let chip = device().with_fault_plan(FaultPlan::new(1));
        let config = snap_ftl_config();
        let mut ftl = if with_swl {
            PageMappedFtl::with_swl(chip, config, swl_config()).expect("snapshot baseline build")
        } else {
            PageMappedFtl::new(chip, config).expect("snapshot baseline build")
        };
        let mut model = SnapModel::default();
        let cut =
            snapshot_replay(&mut ftl, rounds, &mut model).expect("snapshot baseline replay");
        assert!(!cut, "snapshot baseline run must not see a power cut");
        let total = ftl.into_device().fault_ops();

        for torn in [false, true] {
            let mut stats = SweepStats::default();
            for cut_at in 0..total {
                check_snapshot_cut_point(with_swl, rounds, cut_at, torn, &mut stats);
            }
            let violations = stats.lost_acked
                + stats.stale_checkpoints
                + stats.resume_failures
                + stats.recovery_errors;
            grand_points += stats.points;
            grand_violations += violations;
            rows.push(vec![
                "ftl snap".to_owned(),
                if with_swl { "on" } else { "off" }.to_owned(),
                if torn { "torn" } else { "clean" }.to_owned(),
                stats.points.to_string(),
                stats.lost_acked.to_string(),
                stats.stale_checkpoints.to_string(),
                stats.resume_failures.to_string(),
                stats.recovery_errors.to_string(),
            ]);
        }
    }

    print_table(
        &[
            "layer", "swl", "cut", "points", "lost", "stale", "resume", "recover",
        ],
        &rows,
    );
    println!("\n{grand_points} cut points checked, {grand_violations} violations");
    println!(
        "cache sweep: {vanished_unacked} un-acked cached write(s) vanished across cut points \
         (the contract's lossy side, exercised)"
    );
    if grand_points < 1000 {
        println!("warning: fewer than 1000 cut points — raise the rounds argument");
    }
    if vanished_unacked == 0 {
        println!("crashmc: FAILED — cache sweep never lost an un-acked write; the lossy side of \
                  the durability contract went unexercised");
        return ExitCode::FAILURE;
    }
    if grand_violations == 0 {
        println!("crashmc: OK");
        ExitCode::SUCCESS
    } else {
        println!("crashmc: FAILED");
        ExitCode::FAILURE
    }
}
