//! `qdbench` — the threaded-engine sweep: the same 4-channel workload
//! pushed through [`flash_sim::Engine`] at every combination of worker
//! threads {1, 2, 4, 8} and host queue depth {1, 8, 64, 256}, each run
//! verified **bit-identical** against the virtual-time
//! [`flash_sim::Simulator::run_striped`] oracle before its wall-clock
//! numbers are reported. Emits `BENCH_engine.json` (one JSON object) next
//! to a human-readable table.
//!
//! Latency quantiles (p50/p99/p999) come from the report's log2 op-write
//! histogram — they are *virtual-time* figures and therefore identical
//! across every thread/depth combination; the sweep prints them once as
//! part of the bit-exactness evidence. What varies is wall-clock
//! throughput, and that is bounded by the host: on a single-CPU machine
//! extra worker threads measure scheduling overhead, not parallelism, so
//! the JSON records `cpus` alongside every speedup and this bench never
//! asserts on wall-clock ratios.
//!
//! Every run executes with the engine's wall-clock metrics enabled, so each
//! table row and JSON point also attributes where worker time went — busy
//! executing commands, **starved** on the command queue (pop side), or
//! **backpressured** on the completion queue (push side) — plus queue
//! high-water marks and front-end (host) backpressure. That attribution is
//! what explains the sweep's shape: at depth 1 workers starve behind a
//! serialized host; at deep queues the host saturates the lanes and the
//! high-water marks hit the queue bound.
//!
//! Usage: `qdbench [quick|scaled|paper] [--events N]`

use std::time::Instant;

use flash_bench::{json, print_table, scale_from_args};
use flash_sim::experiments::CHANNEL_SPAN;
use flash_sim::{
    Engine, EngineConfig, LayerKind, SimConfig, Simulator, StopCondition, StripedLayer,
    StripedReport, SwlCoordination,
};
use flash_telemetry::EngineMetricsReport;
use flash_trace::{SyntheticTrace, TraceEvent, WorkloadSpec};
use nand::{CellKind, CellSpec, ChannelGeometry, Geometry};
use swl_core::SwlConfig;

const CHANNELS: u32 = 4;
const THREADS: [u32; 4] = [1, 2, 4, 8];
const DEPTHS: [u32; 4] = [1, 8, 64, 256];
/// Per-channel SWL so the engine's pipelined (run-ahead) path is the one
/// measured; global coordination would force page lockstep.
const SWL_THRESHOLD: u64 = 100;

fn events_from_args(default: u64) -> u64 {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--events" {
            let value = args.next().expect("--events needs a number");
            return value.parse().expect("--events needs a number");
        }
    }
    default
}

fn geometry(scale: &flash_sim::experiments::ExperimentScale) -> ChannelGeometry {
    assert!(
        scale.blocks.is_multiple_of(CHANNELS),
        "{CHANNELS} channels must divide {} blocks",
        scale.blocks
    );
    ChannelGeometry::new(
        CHANNELS,
        1,
        Geometry::new(scale.blocks / CHANNELS, scale.pages_per_block, 2048),
    )
}

fn spec(scale: &flash_sim::experiments::ExperimentScale) -> CellSpec {
    CellKind::Mlc2.spec().with_endurance(scale.endurance)
}

fn swl(scale: &flash_sim::experiments::ExperimentScale) -> SwlConfig {
    SwlConfig::new(SWL_THRESHOLD, 0).with_seed(scale.seed)
}

fn trace(logical_pages: u64, seed: u64) -> impl Iterator<Item = TraceEvent> {
    SyntheticTrace::new(WorkloadSpec::paper(logical_pages).with_seed(seed))
        .map(move |e| e.widen(CHANNEL_SPAN, logical_pages))
}

/// The virtual-time oracle run every engine configuration must reproduce.
fn oracle(
    scale: &flash_sim::experiments::ExperimentScale,
    events: u64,
) -> (f64, StripedReport) {
    let mut striped = StripedLayer::build(
        LayerKind::Ftl,
        geometry(scale),
        spec(scale),
        Some(swl(scale)),
        SwlCoordination::PerChannel,
        &SimConfig::default(),
    )
    .expect("oracle build failed");
    let pages = striped.logical_pages();
    let start = Instant::now();
    let report = Simulator::new()
        .run_striped(&mut striped, trace(pages, scale.seed), StopCondition::events(events))
        .expect("oracle run failed");
    (start.elapsed().as_secs_f64(), report)
}

struct Point {
    threads: u32,
    effective_threads: u32,
    queue_depth: u32,
    wall_s: f64,
    ops_per_s: f64,
    metrics: EngineMetricsReport,
}

fn engine_run(
    scale: &flash_sim::experiments::ExperimentScale,
    events: u64,
    threads: u32,
    queue_depth: u32,
    reference: &StripedReport,
) -> Point {
    let mut engine = Engine::new(
        LayerKind::Ftl,
        geometry(scale),
        spec(scale),
        Some(swl(scale)),
        SwlCoordination::PerChannel,
        &SimConfig::default(),
        EngineConfig::default()
            .with_threads(threads)
            .with_queue_depth(queue_depth as usize)
            .with_metrics(true),
    )
    .expect("engine build failed");
    let pages = engine.logical_pages();
    let effective_threads = engine.threads();
    let start = Instant::now();
    engine
        .run(trace(pages, scale.seed), StopCondition::events(events))
        .expect("engine run failed");
    let run = engine.finish().expect("engine finish failed");
    let wall_s = start.elapsed().as_secs_f64();
    assert_eq!(
        run.report, *reference,
        "threads={threads} depth={queue_depth}: engine diverged from the oracle"
    );
    Point {
        threads,
        effective_threads,
        queue_depth,
        wall_s,
        ops_per_s: events as f64 / wall_s,
        metrics: run.metrics.expect("metrics were enabled"),
    }
}

fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

fn main() {
    let scale = scale_from_args();
    let events = events_from_args(20_000);
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "engine qd sweep: FTL x{CHANNELS}ch, {CHANNEL_SPAN}-page host requests, \
         {events} events, {} blocks x {} pages total, endurance {}, \
         SWL (T={SWL_THRESHOLD}, k=0, per-channel), {cpus} cpu(s)",
        scale.blocks, scale.pages_per_block, scale.endurance
    );

    let (oracle_s, reference) = oracle(&scale, events);
    println!("virtual-time oracle: {oracle_s:.2} s\n");

    let mut points = Vec::new();
    for &threads in &THREADS {
        for &depth in &DEPTHS {
            points.push(engine_run(&scale, events, threads, depth, &reference));
        }
    }

    // Speedup baseline: 1 worker thread at the same queue depth.
    let baseline = |depth: u32| -> f64 {
        points
            .iter()
            .find(|p| p.threads == 1 && p.queue_depth == depth)
            .expect("sweep covers threads=1")
            .wall_s
    };

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let snap = &p.metrics.snapshot;
            vec![
                p.threads.to_string(),
                p.effective_threads.to_string(),
                p.queue_depth.to_string(),
                format!("{:.3}", p.wall_s),
                format!("{:.0}", p.ops_per_s),
                format!("x{:.2}", baseline(p.queue_depth) / p.wall_s),
                pct(snap.busy_frac()),
                pct(snap.starved_frac()),
                pct(snap.backpressure_frac()),
                format!(
                    "{}/{}",
                    snap.command_high_water(),
                    snap.command_queues.first().map_or(0, |q| q.capacity)
                ),
                format!("{:.0}", snap.host_backpressure_ns as f64 / 1e6),
            ]
        })
        .collect();
    print_table(
        &[
            "threads", "effective", "depth", "wall s", "ops/s", "vs 1 thread", "busy",
            "starv", "bp", "cmd hw", "host bp ms",
        ],
        &rows,
    );
    println!(
        "\nall {} configurations bit-identical to the virtual-time oracle \
         (metrics enabled in every run)",
        points.len()
    );
    println!(
        "op write latency (virtual time, identical in every run): \
         p50 {} ns, p99 {} ns, p999 {} ns",
        reference.op_write_latency.quantile(0.5),
        reference.op_write_latency.quantile(0.99),
        reference.op_write_latency.quantile(0.999),
    );

    let json = json::object(|o| {
        o.str("bench", "engine_qd_sweep")
            .str("layer", "ftl")
            .u64("channels", u64::from(CHANNELS))
            .u64("blocks", u64::from(scale.blocks))
            .u64("pages_per_block", u64::from(scale.pages_per_block))
            .u64("endurance", u64::from(scale.endurance))
            .u64("events", events)
            .u64("cpus", cpus as u64)
            .str(
                "caveat",
                "wall-clock speedups are bounded by cpus; on a 1-cpu host \
                 extra threads measure scheduling overhead, not parallelism",
            )
            .f64("oracle_s", oracle_s, 3)
            .bool("bit_identical", true)
            .u64("p50_ns", reference.op_write_latency.quantile(0.5))
            .u64("p99_ns", reference.op_write_latency.quantile(0.99))
            .u64("p999_ns", reference.op_write_latency.quantile(0.999))
            .arr("points", |a| {
                for p in &points {
                    let snap = &p.metrics.snapshot;
                    a.obj(|row| {
                        row.u64("threads", u64::from(p.threads))
                            .u64("effective_threads", u64::from(p.effective_threads))
                            .u64("queue_depth", u64::from(p.queue_depth))
                            .f64("wall_s", p.wall_s, 3)
                            .f64("ops_per_s", p.ops_per_s, 0)
                            .f64("speedup_vs_1t", baseline(p.queue_depth) / p.wall_s, 3)
                            .f64("busy_frac", snap.busy_frac(), 4)
                            .f64("starved_frac", snap.starved_frac(), 4)
                            .f64("backpressure_frac", snap.backpressure_frac(), 4)
                            .f64("host_backpressure_ms", snap.host_backpressure_ns as f64 / 1e6, 3)
                            .u64("cmd_queue_high_water", snap.command_high_water() as u64)
                            .u64(
                                "completion_queue_high_water",
                                snap.completion_queue.high_water as u64,
                            )
                            .u64("op_wall_p50_ns", p.metrics.op_write_wall.quantile(0.5))
                            .u64("op_wall_p99_ns", p.metrics.op_write_wall.quantile(0.99))
                            .arr("worker_busy_frac", |w| {
                                for worker in &snap.workers {
                                    w.f64(worker.busy_frac(), 4);
                                }
                            })
                            .arr("worker_idle_frac", |w| {
                                for worker in &snap.workers {
                                    w.f64(worker.idle_frac(), 4);
                                }
                            })
                            .arr("worker_starved_frac", |w| {
                                for worker in &snap.workers {
                                    w.f64(worker.starved_frac(), 4);
                                }
                            })
                            .arr("worker_backpressure_frac", |w| {
                                for worker in &snap.workers {
                                    w.f64(worker.backpressure_frac(), 4);
                                }
                            });
                    });
                }
            });
    });
    std::fs::write("BENCH_engine.json", json + "\n").expect("write BENCH_engine.json");
    println!("wrote BENCH_engine.json");
}
