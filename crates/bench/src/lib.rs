//! # `flash-bench` — table/figure regeneration and micro-benchmarks
//!
//! One binary per table and figure of the paper:
//!
//! | artifact | binary | kind |
//! |---|---|---|
//! | Table 1 (BET RAM size) | `table1` | closed-form |
//! | Table 2 (worst-case extra erases) | `table2` | closed-form |
//! | Table 3 (worst-case extra copies) | `table3` | closed-form |
//! | Table 4 (erase-count statistics) | `table4` | simulation |
//! | Figure 5 (first failure time) | `fig5` | simulation |
//! | Figure 6 (extra block erases) | `fig6` | simulation |
//! | Figure 7 (extra live-page copies) | `fig7` | simulation |
//!
//! Simulation binaries accept a scale argument: `quick` (CI smoke),
//! `scaled` (default; minutes) or `paper` (full size; very long). Run e.g.
//!
//! ```text
//! cargo run --release -p flash-bench --bin fig5 -- scaled
//! ```
//!
//! Micro-benchmarks live in `benches/` on the in-repo [`timing`]
//! harness (`cargo bench -p flash-bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod timing;

use flash_sim::experiments::ExperimentScale;

/// Parses the scale argument (`quick` / `scaled` / `paper`) from the
/// command line, defaulting to `scaled`.
///
/// # Panics
///
/// Panics with a usage message on an unknown argument.
pub fn scale_from_args() -> ExperimentScale {
    match std::env::args().nth(1).as_deref() {
        None | Some("scaled") => ExperimentScale::scaled(),
        Some("quick") => ExperimentScale::quick(),
        Some("paper") => ExperimentScale::paper(),
        Some(other) => panic!("unknown scale {other:?}; expected quick|scaled|paper"),
    }
}

/// Default simulation horizon for a scale: the paper's 10 years, shrunk by
/// the same factor as the endurance so the device reaches a comparable
/// wear state.
pub fn default_horizon_ns(scale: &ExperimentScale) -> u64 {
    let years = 10.0 * f64::from(scale.endurance) / 10_000.0;
    (years * flash_sim::experiments::NANOS_PER_YEAR) as u64
}

/// Renders rows as a fixed-width text table with a header rule.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let fields: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("{}", fields.join("  "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_scales_with_endurance() {
        let paper = ExperimentScale::paper();
        let scaled = ExperimentScale::scaled();
        let ratio = default_horizon_ns(&paper) as f64 / default_horizon_ns(&scaled) as f64;
        assert!((ratio - 10_000.0 / 512.0).abs() < 0.01);
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
