//! Shared JSON emission (and a flat-object parser) for the bench binaries.
//!
//! The `BENCH_*.json` seeds and the `engtop` JSONL export used to be built
//! with hand-rolled `format!` strings in each binary, which is exactly how
//! string-escaping bugs drift between bins. This module centralizes the
//! writing: a tiny builder that handles commas, key/string escaping, and
//! non-finite floats in one place. The workspace builds offline, so — like
//! [`flash_telemetry::json`] — it is written by hand rather than pulled in
//! as a dependency, but unlike the telemetry codec it supports nesting,
//! floats, booleans, and escaped strings, because the bench summaries need
//! all four.
//!
//! [`parse_flat`] is the read side used by `engtop --check`: it decodes one
//! *flat* object per line (numbers, strings, booleans — no nesting), enough
//! to schema-gate a JSONL export without a full JSON parser.

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (with surrounding quotes),
/// escaping quotes, backslashes, and control characters.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_into(out: &mut String, v: f64, decimals: usize) {
    if v.is_finite() {
        let _ = write!(out, "{v:.decimals$}");
    } else {
        // JSON has no NaN/Infinity; null keeps the document valid and the
        // anomaly visible.
        out.push_str("null");
    }
}

/// Builds one JSON object, driving an [`ObjWriter`] through `f`.
///
/// # Example
///
/// ```
/// let line = flash_bench::json::object(|o| {
///     o.u64("threads", 4)
///         .f64("wall_s", 1.25, 3)
///         .str("bench", "demo \"quoted\"")
///         .arr("points", |a| {
///             a.obj(|p| {
///                 p.u64("depth", 8);
///             });
///         });
/// });
/// assert_eq!(
///     line,
///     "{\"threads\":4,\"wall_s\":1.250,\"bench\":\"demo \\\"quoted\\\"\",\
///      \"points\":[{\"depth\":8}]}"
/// );
/// ```
pub fn object(f: impl FnOnce(&mut ObjWriter)) -> String {
    let mut buf = String::with_capacity(128);
    buf.push('{');
    let mut writer = ObjWriter {
        out: &mut buf,
        first: true,
    };
    f(&mut writer);
    buf.push('}');
    buf
}

/// Writes the fields of one JSON object (see [`object`]).
pub struct ObjWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl ObjWriter<'_> {
    fn key(&mut self, key: &str) -> &mut String {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        escape_into(self.out, key);
        self.out.push(':');
        self.out
    }

    /// Writes an unsigned integer field.
    pub fn u64(&mut self, key: &str, v: u64) -> &mut Self {
        let _ = write!(self.key(key), "{v}");
        self
    }

    /// Writes a float field with `decimals` fractional digits (`null` when
    /// not finite).
    pub fn f64(&mut self, key: &str, v: f64, decimals: usize) -> &mut Self {
        let out = self.key(key);
        float_into(out, v, decimals);
        self
    }

    /// Writes a boolean field.
    pub fn bool(&mut self, key: &str, v: bool) -> &mut Self {
        let _ = write!(self.key(key), "{v}");
        self
    }

    /// Writes an escaped string field.
    pub fn str(&mut self, key: &str, v: &str) -> &mut Self {
        let out = self.key(key);
        escape_into(out, v);
        self
    }

    /// Writes a nested object field.
    pub fn obj(&mut self, key: &str, f: impl FnOnce(&mut ObjWriter)) -> &mut Self {
        let out = self.key(key);
        out.push('{');
        let mut writer = ObjWriter { out, first: true };
        f(&mut writer);
        self.out.push('}');
        self
    }

    /// Writes a nested array field.
    pub fn arr(&mut self, key: &str, f: impl FnOnce(&mut ArrWriter)) -> &mut Self {
        let out = self.key(key);
        out.push('[');
        let mut writer = ArrWriter { out, first: true };
        f(&mut writer);
        self.out.push(']');
        self
    }
}

/// Writes the elements of one JSON array (see [`ObjWriter::arr`]).
pub struct ArrWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl ArrWriter<'_> {
    fn sep(&mut self) -> &mut String {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out
    }

    /// Appends an unsigned integer element.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        let _ = write!(self.sep(), "{v}");
        self
    }

    /// Appends a float element with `decimals` fractional digits.
    pub fn f64(&mut self, v: f64, decimals: usize) -> &mut Self {
        let out = self.sep();
        float_into(out, v, decimals);
        self
    }

    /// Appends an escaped string element.
    pub fn str(&mut self, v: &str) -> &mut Self {
        let out = self.sep();
        escape_into(out, v);
        self
    }

    /// Appends an object element.
    pub fn obj(&mut self, f: impl FnOnce(&mut ObjWriter)) -> &mut Self {
        let out = self.sep();
        out.push('{');
        let mut writer = ObjWriter { out, first: true };
        f(&mut writer);
        self.out.push('}');
        self
    }
}

/// A scalar value decoded by [`parse_flat`].
#[derive(Debug, Clone, PartialEq)]
pub enum JsonScalar {
    /// A JSON number (integers and decimals both land here).
    Num(f64),
    /// A JSON string, unescaped.
    Str(String),
    /// A JSON boolean.
    Bool(bool),
}

impl JsonScalar {
    /// The numeric value, if this scalar is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonScalar::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this scalar is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonScalar::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one flat JSON object — string, number, and boolean values only —
/// into `(key, value)` pairs in document order.
///
/// # Errors
///
/// A human-readable description of the first syntax problem.
pub fn parse_flat(line: &str) -> Result<Vec<(String, JsonScalar)>, String> {
    let inner = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not wrapped in {}")?;
    let mut fields = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let (key, after_key) = parse_string(rest).map_err(|e| format!("key: {e}"))?;
        let after_colon = after_key
            .trim_start()
            .strip_prefix(':')
            .ok_or("expected ':' after key")?
            .trim_start();
        let (value, tail) = parse_value(after_colon)?;
        fields.push((key, value));
        rest = tail.trim_start();
        if let Some(next) = rest.strip_prefix(',') {
            rest = next.trim_start();
            if rest.is_empty() {
                return Err("trailing comma".to_owned());
            }
        } else if !rest.is_empty() {
            return Err("expected ',' between fields".to_owned());
        }
    }
    Ok(fields)
}

/// Parses a leading JSON string literal, returning it unescaped plus the
/// remaining input.
fn parse_string(input: &str) -> Result<(String, &str), String> {
    let mut chars = input
        .strip_prefix('"')
        .ok_or("expected '\"'")?
        .char_indices();
    let mut out = String::new();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &input[i + 2..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let digit = chars
                            .next()
                            .and_then(|(_, c)| c.to_digit(16))
                            .ok_or("\\u needs 4 hex digits")?;
                        code = code * 16 + digit;
                    }
                    out.push(char::from_u32(code).ok_or("\\u escape is a surrogate")?);
                }
                Some((_, other)) => return Err(format!("unsupported escape \\{other}")),
                None => return Err("dangling escape".to_owned()),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_value(input: &str) -> Result<(JsonScalar, &str), String> {
    if input.starts_with('"') {
        let (s, tail) = parse_string(input)?;
        return Ok((JsonScalar::Str(s), tail));
    }
    if let Some(tail) = input.strip_prefix("true") {
        return Ok((JsonScalar::Bool(true), tail));
    }
    if let Some(tail) = input.strip_prefix("false") {
        return Ok((JsonScalar::Bool(false), tail));
    }
    let end = input
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(input.len());
    if end == 0 {
        return Err("expected string, number, or boolean value".to_owned());
    }
    let num = input[..end]
        .parse::<f64>()
        .map_err(|_| format!("bad number {:?}", &input[..end]))?;
    Ok((JsonScalar::Num(num), &input[end..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_hostile_strings() {
        let line = object(|o| {
            o.str("s", "a\"b\\c\nd\te\u{1}f");
        });
        assert_eq!(line, "{\"s\":\"a\\\"b\\\\c\\nd\\te\\u0001f\"}");
        let fields = parse_flat(&line).unwrap();
        assert_eq!(fields[0].0, "s");
        assert_eq!(fields[0].1.as_str(), Some("a\"b\\c\nd\te\u{1}f"));
    }

    #[test]
    fn nested_arrays_and_objects_compose() {
        let line = object(|o| {
            o.u64("n", 2).arr("rows", |a| {
                a.obj(|r| {
                    r.f64("x", 0.5, 2).bool("ok", true);
                });
                a.obj(|r| {
                    r.f64("x", f64::NAN, 2);
                });
            });
        });
        assert_eq!(
            line,
            "{\"n\":2,\"rows\":[{\"x\":0.50,\"ok\":true},{\"x\":null}]}"
        );
    }

    #[test]
    fn parse_flat_round_trips_scalars() {
        let line = object(|o| {
            o.u64("a", 42)
                .f64("b", -1.25, 3)
                .bool("c", false)
                .str("d", "x");
        });
        let fields = parse_flat(&line).unwrap();
        assert_eq!(fields[0], ("a".into(), JsonScalar::Num(42.0)));
        assert_eq!(fields[1], ("b".into(), JsonScalar::Num(-1.25)));
        assert_eq!(fields[2], ("c".into(), JsonScalar::Bool(false)));
        assert_eq!(fields[3], ("d".into(), JsonScalar::Str("x".into())));
    }

    #[test]
    fn parse_flat_rejects_garbage() {
        assert!(parse_flat("").is_err());
        assert!(parse_flat("{\"a\":}").is_err());
        assert!(parse_flat("{\"a\":1,}").is_err());
        assert!(parse_flat("{\"a\" 1}").is_err());
        assert!(parse_flat("{\"a\":\"unterminated}").is_err());
        assert!(parse_flat("{\"a\":\"bad\\q\"}").is_err());
    }

    #[test]
    fn empty_object_is_valid() {
        assert_eq!(object(|_| {}), "{}");
        assert_eq!(parse_flat("{}").unwrap(), Vec::new());
    }
}
