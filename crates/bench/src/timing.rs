//! A small self-calibrating wall-clock harness for the `benches/` targets.
//!
//! The registry-less build environment cannot resolve Criterion, so the
//! micro-benchmarks use this instead: warm up, pick an iteration count that
//! fills a measurement window, and report mean ns/iter. Results are printed
//! as a table and can be exported as JSON lines for trend tracking.

use std::time::{Duration, Instant};

/// Re-export of the optimizer barrier, criterion-style.
pub use std::hint::black_box;

/// Target duration of one measurement window.
const MEASURE_WINDOW: Duration = Duration::from_millis(120);
/// Target duration of the calibration/warm-up window.
const WARMUP_WINDOW: Duration = Duration::from_millis(30);

/// One benchmark's measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/name` label.
    pub label: String,
    /// Mean nanoseconds per iteration over the measurement window.
    pub ns_per_iter: f64,
    /// Iterations actually timed.
    pub iters: u64,
}

/// A named collection of benchmarks sharing a report.
#[derive(Debug, Default)]
pub struct BenchGroup {
    measurements: Vec<Measurement>,
}

impl BenchGroup {
    /// Creates an empty group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `routine` called in a loop (state lives in the closure's
    /// captures, as with criterion's `Bencher::iter`).
    pub fn bench(&mut self, label: &str, mut routine: impl FnMut()) {
        // Warm up and calibrate: how many calls fit in the warm-up window?
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_WINDOW {
            routine();
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters = ((MEASURE_WINDOW.as_secs_f64() / per_iter) as u64).max(1);

        let start = Instant::now();
        for _ in 0..iters {
            routine();
        }
        let elapsed = start.elapsed();
        self.measurements.push(Measurement {
            label: label.to_string(),
            ns_per_iter: elapsed.as_nanos() as f64 / iters as f64,
            iters,
        });
    }

    /// Times `routine` on fresh state from `setup` each iteration; only the
    /// `routine` portion is timed (criterion's `iter_batched`).
    pub fn bench_batched<S, T>(
        &mut self,
        label: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        let mut timed = Duration::ZERO;
        let mut warm_iters = 0u64;
        while timed < WARMUP_WINDOW {
            let state = setup();
            let start = Instant::now();
            black_box(routine(state));
            timed += start.elapsed();
            warm_iters += 1;
        }
        let per_iter = timed.as_secs_f64() / warm_iters as f64;
        let iters = ((MEASURE_WINDOW.as_secs_f64() / per_iter) as u64).max(1);

        let mut elapsed = Duration::ZERO;
        for _ in 0..iters {
            let state = setup();
            let start = Instant::now();
            black_box(routine(state));
            elapsed += start.elapsed();
        }
        self.measurements.push(Measurement {
            label: label.to_string(),
            ns_per_iter: elapsed.as_nanos() as f64 / iters as f64,
            iters,
        });
    }

    /// The measurements taken so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Prints all measurements as an aligned table.
    pub fn report(&self) {
        let width = self
            .measurements
            .iter()
            .map(|m| m.label.len())
            .max()
            .unwrap_or(0);
        for m in &self.measurements {
            println!(
                "{:width$}  {:>14}  ({} iters)",
                m.label,
                format_ns(m.ns_per_iter),
                m.iters,
            );
        }
    }
}

/// Formats nanoseconds human-readably (ns/µs/ms).
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}
