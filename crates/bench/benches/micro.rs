//! Micro-benchmarks of the SW Leveler primitives: the operations a firmware
//! controller runs on every erase (SWL-BETUpdate) and on every leveling
//! pass (the cyclic BET scan), plus snapshot codec and trace generation.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use flash_trace::{SyntheticTrace, WorkloadSpec, Zipf};
use hotid::{HotDataConfig, MultiHashIdentifier};
use nand::{CellKind, Geometry, NandDevice, PageAddr, SpareArea};
use swl_core::counting::CountingLeveler;
use swl_core::persist::{DualBuffer, Snapshot};
use swl_core::{SwLeveler, SwlCleaner, SwlConfig};

const BLOCKS: u32 = 4096; // the paper's 1 GiB MLC×2 chip

struct NoCopyCleaner;
impl SwlCleaner for NoCopyCleaner {
    type Error = std::convert::Infallible;
    fn erase_block_set(
        &mut self,
        first_block: u32,
        count: u32,
        erased: &mut Vec<u32>,
    ) -> Result<(), Self::Error> {
        erased.extend(first_block..first_block + count);
        Ok(())
    }
}

fn bench_bet_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("swl");
    group.throughput(Throughput::Elements(1));
    group.bench_function("note_erase (SWL-BETUpdate)", |b| {
        let mut leveler = SwLeveler::new(BLOCKS, SwlConfig::new(u64::MAX / 2, 0)).unwrap();
        let mut block = 0u32;
        b.iter(|| {
            block = (block + 1) % BLOCKS;
            black_box(leveler.note_erase(block));
        });
    });
    group.finish();
}

fn bench_cyclic_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("swl");
    // Worst case for the scan: almost every flag set, one clear flag far
    // from findex.
    group.bench_function("next_clear scan (4095/4096 set)", |b| {
        let mut leveler = SwLeveler::new(BLOCKS, SwlConfig::new(u64::MAX / 2, 0)).unwrap();
        for block in 0..BLOCKS - 1 {
            leveler.note_erase(block);
        }
        b.iter(|| black_box(leveler.bet().next_clear(black_box(0))));
    });
    group.finish();
}

fn bench_level_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("swl");
    group.bench_function("level pass (one hot block)", |b| {
        b.iter_batched(
            || {
                let mut leveler = SwLeveler::new(BLOCKS, SwlConfig::new(4, 0)).unwrap();
                for _ in 0..64 {
                    leveler.note_erase(0);
                }
                leveler
            },
            |mut leveler| {
                leveler.level(&mut NoCopyCleaner).unwrap();
                leveler
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_snapshot_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("persist");
    let mut leveler = SwLeveler::new(BLOCKS, SwlConfig::new(100, 0)).unwrap();
    for block in (0..BLOCKS).step_by(3) {
        leveler.note_erase(block);
    }
    let encoded = Snapshot::capture(&leveler, 1).encode();
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("snapshot encode", |b| {
        b.iter(|| black_box(Snapshot::capture(&leveler, 1).encode()));
    });
    group.bench_function("snapshot decode", |b| {
        b.iter(|| black_box(Snapshot::decode(&encoded).unwrap()));
    });
    group.bench_function("dual-buffer save+recover", |b| {
        b.iter(|| {
            let mut nvram = DualBuffer::new();
            nvram.save(&leveler);
            black_box(nvram.recover().unwrap());
        });
    });
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("synthetic 10k events", |b| {
        let spec = WorkloadSpec::paper(524_288).with_seed(1);
        b.iter(|| {
            let trace = SyntheticTrace::new(spec.clone());
            black_box(trace.take(10_000).count())
        });
    });
    group.bench_function("zipf sample", |b| {
        let zipf = Zipf::new(24_000, 0.95);
        let mut u = 0.0f64;
        b.iter(|| {
            u = (u + 0.618_034) % 1.0;
            black_box(zipf.sample(u))
        });
    });
    group.finish();
}

fn bench_hot_data(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotid");
    group.throughput(Throughput::Elements(1));
    group.bench_function("record_write", |b| {
        let mut id = MultiHashIdentifier::new(HotDataConfig::default()).unwrap();
        let mut lba = 0u64;
        b.iter(|| {
            lba = lba.wrapping_add(0x9E37_79B9) % 500_000;
            black_box(id.record_write(lba));
        });
    });
    group.bench_function("is_hot", |b| {
        let mut id = MultiHashIdentifier::new(HotDataConfig::default()).unwrap();
        for lba in 0..10_000u64 {
            id.record_write(lba % 64);
        }
        let mut lba = 0u64;
        b.iter(|| {
            lba = (lba + 1) % 128;
            black_box(id.is_hot(lba));
        });
    });
    group.bench_function("decay (8192 counters)", |b| {
        let mut id = MultiHashIdentifier::new(HotDataConfig::default()).unwrap();
        b.iter(|| id.decay());
    });
    group.finish();
}

fn bench_counting_leveler(c: &mut Criterion) {
    let mut group = c.benchmark_group("counting-wl");
    // The cost the BET avoids: a full-table scan per leveling decision.
    group.bench_function("pick_victim (4096 blocks)", |b| {
        let mut wl = CountingLeveler::new(BLOCKS, 2);
        for block in 0..BLOCKS {
            for _ in 0..(block % 7) {
                wl.note_erase(block);
            }
        }
        b.iter(|| black_box(wl.pick_victim()));
    });
    group.finish();
}

fn bench_device_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("nand");
    group.throughput(Throughput::Elements(1));
    group.bench_function("program+invalidate+erase cycle", |b| {
        let mut device = NandDevice::new(
            Geometry::new(4, 64, 2048),
            CellKind::Mlc2.spec().with_endurance(u32::MAX),
        );
        b.iter(|| {
            for page in 0..64 {
                device
                    .program(PageAddr::new(0, page), u64::from(page), SpareArea::valid(0))
                    .unwrap();
                device.invalidate(PageAddr::new(0, page)).unwrap();
            }
            device.erase(0).unwrap();
        });
    });
    group.bench_function("erase_stats (4096 blocks)", |b| {
        let device = NandDevice::new(Geometry::mlc2_1gib(), CellKind::Mlc2.spec());
        b.iter(|| black_box(device.erase_stats()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bet_update,
    bench_cyclic_scan,
    bench_level_pass,
    bench_snapshot_codec,
    bench_trace_generation,
    bench_hot_data,
    bench_counting_leveler,
    bench_device_ops
);
criterion_main!(benches);
