//! Micro-benchmarks of the SW Leveler primitives: the operations a firmware
//! controller runs on every erase (SWL-BETUpdate) and on every leveling
//! pass (the cyclic BET scan), plus snapshot codec and trace generation.
//!
//! Uses the in-repo `flash_bench::timing` harness (the registry-less build
//! cannot resolve Criterion). Run with `cargo bench -p flash-bench`.

use flash_bench::timing::{black_box, BenchGroup};
use flash_trace::{SyntheticTrace, WorkloadSpec, Zipf};
use hotid::{HotDataConfig, MultiHashIdentifier};
use nand::{CellKind, FreeBlockLadder, Geometry, NandDevice, PageAddr, SpareArea, VictimIndex};
use swl_core::rng::SplitMix64;
use swl_core::counting::CountingLeveler;
use swl_core::persist::{DualBuffer, Snapshot};
use swl_core::{SwLeveler, SwlCleaner, SwlConfig};

const BLOCKS: u32 = 4096; // the paper's 1 GiB MLC×2 chip

struct NoCopyCleaner;
impl SwlCleaner for NoCopyCleaner {
    type Error = std::convert::Infallible;
    fn erase_block_set(
        &mut self,
        first_block: u32,
        count: u32,
        erased: &mut Vec<u32>,
    ) -> Result<(), Self::Error> {
        erased.extend(first_block..first_block + count);
        Ok(())
    }
}

fn bench_bet_update(g: &mut BenchGroup) {
    let mut leveler = SwLeveler::new(BLOCKS, SwlConfig::new(u64::MAX / 2, 0)).unwrap();
    let mut block = 0u32;
    g.bench("swl/note_erase (SWL-BETUpdate)", || {
        block = (block + 1) % BLOCKS;
        black_box(leveler.note_erase(block));
    });
}

fn bench_cyclic_scan(g: &mut BenchGroup) {
    // Worst case for the scan: almost every flag set, one clear flag far
    // from findex.
    let mut leveler = SwLeveler::new(BLOCKS, SwlConfig::new(u64::MAX / 2, 0)).unwrap();
    for block in 0..BLOCKS - 1 {
        leveler.note_erase(block);
    }
    g.bench("swl/next_clear scan (4095/4096 set)", || {
        black_box(leveler.bet().next_clear(black_box(0)));
    });
}

fn bench_level_pass(g: &mut BenchGroup) {
    g.bench_batched(
        "swl/level pass (one hot block)",
        || {
            let mut leveler = SwLeveler::new(BLOCKS, SwlConfig::new(4, 0)).unwrap();
            for _ in 0..64 {
                leveler.note_erase(0);
            }
            leveler
        },
        |mut leveler| {
            leveler.level(&mut NoCopyCleaner).unwrap();
            leveler
        },
    );
}

fn bench_snapshot_codec(g: &mut BenchGroup) {
    let mut leveler = SwLeveler::new(BLOCKS, SwlConfig::new(100, 0)).unwrap();
    for block in (0..BLOCKS).step_by(3) {
        leveler.note_erase(block);
    }
    let encoded = Snapshot::capture(&leveler, 1).encode();
    g.bench("persist/snapshot encode", || {
        black_box(Snapshot::capture(&leveler, 1).encode());
    });
    g.bench("persist/snapshot decode", || {
        black_box(Snapshot::decode(&encoded).unwrap());
    });
    g.bench("persist/dual-buffer save+recover", || {
        let mut nvram = DualBuffer::new();
        nvram.save(&leveler);
        black_box(nvram.recover().unwrap());
    });
}

fn bench_trace_generation(g: &mut BenchGroup) {
    let spec = WorkloadSpec::paper(524_288).with_seed(1);
    g.bench("trace/synthetic 10k events", || {
        let trace = SyntheticTrace::new(spec.clone());
        black_box(trace.take(10_000).count());
    });
    let zipf = Zipf::new(24_000, 0.95);
    let mut u = 0.0f64;
    g.bench("trace/zipf sample", || {
        u = (u + 0.618_034) % 1.0;
        black_box(zipf.sample(u));
    });
}

fn bench_hot_data(g: &mut BenchGroup) {
    let mut id = MultiHashIdentifier::new(HotDataConfig::default()).unwrap();
    let mut lba = 0u64;
    g.bench("hotid/record_write", || {
        lba = lba.wrapping_add(0x9E37_79B9) % 500_000;
        black_box(id.record_write(lba));
    });
    let mut id = MultiHashIdentifier::new(HotDataConfig::default()).unwrap();
    for lba in 0..10_000u64 {
        id.record_write(lba % 64);
    }
    let mut lba = 0u64;
    g.bench("hotid/is_hot", || {
        lba = (lba + 1) % 128;
        black_box(id.is_hot(lba));
    });
    let mut id = MultiHashIdentifier::new(HotDataConfig::default()).unwrap();
    g.bench("hotid/decay (8192 counters)", || id.decay());
}

fn bench_counting_leveler(g: &mut BenchGroup) {
    // The cost the BET avoids: a full-table scan per leveling decision.
    let mut wl = CountingLeveler::new(BLOCKS, 2);
    for block in 0..BLOCKS {
        for _ in 0..(block % 7) {
            wl.note_erase(block);
        }
    }
    g.bench("counting-wl/pick_victim (4096 blocks)", || {
        black_box(wl.pick_victim());
    });
}

/// GC victim selection: the seed's O(blocks) cyclic scan against the
/// incremental `VictimIndex`, on the worst-case population for the scan
/// (no block qualifies, so the fallback walks the whole chip).
fn bench_victim_selection(g: &mut BenchGroup) {
    for blocks in [1024u32, 4096, 16384] {
        let mut rng = SplitMix64::new(0xB10C + u64::from(blocks));
        let states: Vec<(u32, u32)> = (0..blocks)
            .map(|_| {
                let invalid = rng.range_u64(1..64) as u32;
                let valid = 64 + rng.range_u64(0..64) as u32; // invalid ≤ valid
                (invalid, valid)
            })
            .collect();

        // The pre-index path: greedy-else-max-invalid linear scan.
        let mut cursor = 0u32;
        g.bench(&format!("gc/victim linear scan ({blocks} blocks)"), || {
            cursor = (cursor + 97) % blocks;
            let mut fallback: Option<(u32, u32)> = None;
            for step in 0..blocks {
                let b = (cursor + step) % blocks;
                let (invalid, valid) = states[b as usize];
                if invalid > valid {
                    fallback = Some((invalid, b));
                    break;
                }
                if fallback.is_none_or(|(best, _)| invalid > best) {
                    fallback = Some((invalid, b));
                }
            }
            black_box(fallback);
        });

        let mut index = VictimIndex::new(blocks);
        for (b, &(invalid, valid)) in states.iter().enumerate() {
            index.update(b as u32, true, invalid, valid);
        }
        let mut cursor = 0u32;
        g.bench(&format!("gc/victim index select ({blocks} blocks)"), || {
            cursor = (cursor + 97) % blocks;
            black_box(index.select(cursor));
        });
    }
}

/// Min-wear free-block allocation: the seed's linear scan over the free
/// pool against the wear bucket ladder, steady-state pop/recycle loop.
fn bench_free_pop(g: &mut BenchGroup) {
    for blocks in [1024u32, 4096, 16384] {
        let mut rng = SplitMix64::new(0xF4EE + u64::from(blocks));
        let wears: Vec<u64> = (0..blocks).map(|_| rng.range_u64(0..50)).collect();

        let mut free: Vec<u32> = (0..blocks).collect();
        g.bench(&format!("alloc/free-pop linear scan ({blocks} blocks)"), || {
            let mut best = 0usize;
            let mut best_wear = u64::MAX;
            for (i, &b) in free.iter().enumerate() {
                let wear = wears[b as usize];
                if wear < best_wear {
                    best_wear = wear;
                    best = i;
                }
            }
            let block = free.swap_remove(best);
            free.push(black_box(block)); // recycle: pool size stays constant
        });

        let mut ladder = FreeBlockLadder::new();
        for b in 0..blocks {
            ladder.push(b, wears[b as usize]);
        }
        g.bench(&format!("alloc/free-pop wear ladder ({blocks} blocks)"), || {
            let block = ladder.pop_min().expect("pool never drains");
            ladder.push(black_box(block), wears[block as usize]);
        });
    }
}

fn bench_device_ops(g: &mut BenchGroup) {
    let mut device = NandDevice::new(
        Geometry::new(4, 64, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    );
    g.bench("nand/program+invalidate+erase cycle", || {
        for page in 0..64 {
            device
                .program(PageAddr::new(0, page), u64::from(page), SpareArea::valid(0))
                .unwrap();
            device.invalidate(PageAddr::new(0, page)).unwrap();
        }
        device.erase(0).unwrap();
    });
    let device = NandDevice::new(Geometry::mlc2_1gib(), CellKind::Mlc2.spec());
    g.bench("nand/erase_stats (4096 blocks)", || {
        black_box(device.erase_stats());
    });
}

fn main() {
    let mut g = BenchGroup::new();
    bench_bet_update(&mut g);
    bench_cyclic_scan(&mut g);
    bench_level_pass(&mut g);
    bench_snapshot_codec(&mut g);
    bench_trace_generation(&mut g);
    bench_hot_data(&mut g);
    bench_counting_leveler(&mut g);
    bench_victim_selection(&mut g);
    bench_free_pop(&mut g);
    bench_device_ops(&mut g);
    g.report();
}
