//! Benchmarks of the translation-layer hot paths: host writes (with and
//! without the SW Leveler attached), garbage collection pressure, and the
//! NFTL merge path.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ftl::{FtlConfig, PageMappedFtl};
use nand::{CellKind, Geometry, NandDevice};
use nftl::{BlockMappedNftl, NftlConfig};
use swl_core::SwlConfig;

fn device(blocks: u32, pages: u32) -> NandDevice {
    NandDevice::new(
        Geometry::new(blocks, pages, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    )
}

/// Hot-update loop over a small working set: the GC-heavy steady state.
fn bench_ftl_writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ftl");
    group.throughput(Throughput::Elements(1));
    for (name, swl) in [
        ("write (baseline)", None),
        ("write (+SWL T=100)", Some(SwlConfig::new(100, 0))),
    ] {
        group.bench_function(name, |b| {
            let mut ftl = match swl {
                None => PageMappedFtl::new(device(256, 64), FtlConfig::default()).unwrap(),
                Some(s) => {
                    PageMappedFtl::with_swl(device(256, 64), FtlConfig::default(), s).unwrap()
                }
            };
            // Age the device: fill a third of the space once.
            let fill = ftl.logical_pages() / 3;
            for lba in 0..fill {
                ftl.write(lba, lba).unwrap();
            }
            let mut token = 0u64;
            b.iter(|| {
                token += 1;
                ftl.write(black_box(token % 512), token).unwrap();
            });
        });
    }
    group.bench_function("read (mapped)", |b| {
        let mut ftl = PageMappedFtl::new(device(256, 64), FtlConfig::default()).unwrap();
        for lba in 0..1024u64 {
            ftl.write(lba, lba).unwrap();
        }
        let mut lba = 0u64;
        b.iter(|| {
            lba = (lba + 1) % 1024;
            black_box(ftl.read(lba).unwrap());
        });
    });
    group.finish();
}

fn bench_nftl_writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("nftl");
    group.throughput(Throughput::Elements(1));
    for (name, swl) in [
        ("write (baseline)", None),
        ("write (+SWL T=100)", Some(SwlConfig::new(100, 0))),
    ] {
        group.bench_function(name, |b| {
            let mut nftl = match swl {
                None => BlockMappedNftl::new(device(256, 64), NftlConfig::default()).unwrap(),
                Some(s) => {
                    BlockMappedNftl::with_swl(device(256, 64), NftlConfig::default(), s).unwrap()
                }
            };
            let fill = nftl.logical_pages() / 3;
            for lba in 0..fill {
                nftl.write(lba, lba).unwrap();
            }
            let mut token = 0u64;
            b.iter(|| {
                token += 1;
                nftl.write(black_box(token % 512), token).unwrap();
            });
        });
    }
    // Dedicated merge-path pressure: hammer a single offset so every
    // pages-per-block writes force a full merge.
    group.bench_function("merge-heavy overwrite", |b| {
        let mut nftl = BlockMappedNftl::new(device(64, 16), NftlConfig::default()).unwrap();
        let mut token = 0u64;
        b.iter(|| {
            token += 1;
            nftl.write(black_box(7), token).unwrap();
        });
    });
    group.finish();
}

/// Mount-time table rebuild from spare areas.
fn bench_mount(c: &mut Criterion) {
    let mut group = c.benchmark_group("mount");
    group.bench_function("ftl mount (256 blocks, aged)", |b| {
        let mut ftl = PageMappedFtl::new(device(256, 64), FtlConfig::default()).unwrap();
        for round in 0..20_000u64 {
            ftl.write(round % 4_000, round).unwrap();
        }
        let chip = ftl.into_device();
        b.iter_batched(
            || chip.clone(),
            |chip| PageMappedFtl::mount(chip, FtlConfig::default()).unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("nftl mount (256 blocks, aged)", |b| {
        let mut nftl = BlockMappedNftl::new(device(256, 64), NftlConfig::default()).unwrap();
        for round in 0..20_000u64 {
            nftl.write(round % 4_000, round).unwrap();
        }
        let chip = nftl.into_device();
        b.iter_batched(
            || chip.clone(),
            |chip| BlockMappedNftl::mount(chip, NftlConfig::default()).unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_ftl_writes, bench_nftl_writes, bench_mount);
criterion_main!(benches);
