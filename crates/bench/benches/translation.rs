//! Benchmarks of the translation-layer hot paths: host writes (with and
//! without the SW Leveler attached), garbage collection pressure, and the
//! NFTL merge path.
//!
//! Uses the in-repo `flash_bench::timing` harness (the registry-less build
//! cannot resolve Criterion). Run with `cargo bench -p flash-bench`.

use flash_bench::timing::{black_box, BenchGroup};
use ftl::{FtlConfig, PageMappedFtl};
use nand::{CellKind, Geometry, NandDevice};
use nftl::{BlockMappedNftl, NftlConfig};
use swl_core::SwlConfig;

fn device(blocks: u32, pages: u32) -> NandDevice {
    NandDevice::new(
        Geometry::new(blocks, pages, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    )
}

/// Hot-update loop over a small working set: the GC-heavy steady state.
fn bench_ftl_writes(g: &mut BenchGroup) {
    for (name, swl) in [
        ("ftl/write (baseline)", None),
        ("ftl/write (+SWL T=100)", Some(SwlConfig::new(100, 0))),
    ] {
        let mut ftl = match swl {
            None => PageMappedFtl::new(device(256, 64), FtlConfig::default()).unwrap(),
            Some(s) => PageMappedFtl::with_swl(device(256, 64), FtlConfig::default(), s).unwrap(),
        };
        // Age the device: fill a third of the space once.
        let fill = ftl.logical_pages() / 3;
        for lba in 0..fill {
            ftl.write(lba, lba).unwrap();
        }
        let mut token = 0u64;
        g.bench(name, || {
            token += 1;
            ftl.write(black_box(token % 512), token).unwrap();
        });
    }
    let mut ftl = PageMappedFtl::new(device(256, 64), FtlConfig::default()).unwrap();
    for lba in 0..1024u64 {
        ftl.write(lba, lba).unwrap();
    }
    let mut lba = 0u64;
    g.bench("ftl/read (mapped)", || {
        lba = (lba + 1) % 1024;
        black_box(ftl.read(lba).unwrap());
    });
}

fn bench_nftl_writes(g: &mut BenchGroup) {
    for (name, swl) in [
        ("nftl/write (baseline)", None),
        ("nftl/write (+SWL T=100)", Some(SwlConfig::new(100, 0))),
    ] {
        let mut nftl = match swl {
            None => BlockMappedNftl::new(device(256, 64), NftlConfig::default()).unwrap(),
            Some(s) => {
                BlockMappedNftl::with_swl(device(256, 64), NftlConfig::default(), s).unwrap()
            }
        };
        let fill = nftl.logical_pages() / 3;
        for lba in 0..fill {
            nftl.write(lba, lba).unwrap();
        }
        let mut token = 0u64;
        g.bench(name, || {
            token += 1;
            nftl.write(black_box(token % 512), token).unwrap();
        });
    }
    // Dedicated merge-path pressure: hammer a single offset so every
    // pages-per-block writes force a full merge.
    let mut nftl = BlockMappedNftl::new(device(64, 16), NftlConfig::default()).unwrap();
    let mut token = 0u64;
    g.bench("nftl/merge-heavy overwrite", || {
        token += 1;
        nftl.write(black_box(7), token).unwrap();
    });
}

/// Mount-time table rebuild from spare areas.
fn bench_mount(g: &mut BenchGroup) {
    let mut ftl = PageMappedFtl::new(device(256, 64), FtlConfig::default()).unwrap();
    for round in 0..20_000u64 {
        ftl.write(round % 4_000, round).unwrap();
    }
    let chip = ftl.into_device();
    g.bench_batched(
        "mount/ftl mount (256 blocks, aged)",
        || chip.clone(),
        |chip| PageMappedFtl::mount(chip, FtlConfig::default()).unwrap(),
    );
    let mut nftl = BlockMappedNftl::new(device(256, 64), NftlConfig::default()).unwrap();
    for round in 0..20_000u64 {
        nftl.write(round % 4_000, round).unwrap();
    }
    let chip = nftl.into_device();
    g.bench_batched(
        "mount/nftl mount (256 blocks, aged)",
        || chip.clone(),
        |chip| BlockMappedNftl::mount(chip, NftlConfig::default()).unwrap(),
    );
}

fn main() {
    let mut g = BenchGroup::new();
    bench_ftl_writes(&mut g);
    bench_nftl_writes(&mut g);
    bench_mount(&mut g);
    g.report();
}
