//! Edge cases for [`SegmentResampler`]: degenerate segment lengths, base
//! traces that barely (or don't) cover one segment, and iterator-protocol
//! seams like `take()` that must not disturb the seeded random walk.

use flash_trace::{SegmentResampler, TraceEvent, WorkloadSpec, NANOS_PER_SEC};

fn base_trace(events: u64) -> Vec<TraceEvent> {
    (0..events)
        .map(|i| TraceEvent::write(i * NANOS_PER_SEC / 4, i % 128))
        .collect()
}

#[test]
#[should_panic(expected = "segment length must be positive")]
fn zero_segment_rejected_for_events() {
    SegmentResampler::from_events(base_trace(100), 7, 0);
}

#[test]
#[should_panic(expected = "segment length must be positive")]
fn zero_segment_rejected_for_spec() {
    SegmentResampler::from_spec_with_segment(WorkloadSpec::paper(4096), 7, 0);
}

#[test]
#[should_panic(expected = "base trace shorter than one segment")]
fn segment_longer_than_base_rejected() {
    // The base spans 25 virtual seconds; asking for 60-second windows
    // leaves nothing to sample from.
    SegmentResampler::from_events(base_trace(100), 7, 60 * NANOS_PER_SEC);
}

/// A base exactly one segment long is the smallest legal input: every
/// window starts at zero and the resampler replays the base verbatim,
/// forever, with monotone re-based timestamps.
#[test]
fn base_exactly_one_segment_replays_verbatim() {
    let base = base_trace(40);
    let segment = base.last().unwrap().at_ns + 1;
    let events: Vec<_> = SegmentResampler::from_events(base.clone(), 3, segment)
        .take(base.len() * 3)
        .collect();
    for (i, event) in events.iter().enumerate() {
        let source = &base[i % base.len()];
        assert_eq!(event.lba, source.lba, "event {i} replayed the wrong page");
        assert_eq!(event.len, source.len);
        let epoch = (i / base.len()) as u64 * segment;
        assert_eq!(event.at_ns, epoch + source.at_ns, "event {i} timestamp");
    }
}

/// Timestamps stay sorted across segment boundaries even when a window
/// ends mid-gap: the next segment is re-based at the following epoch.
#[test]
fn resampled_events_stay_sorted() {
    let events: Vec<_> = SegmentResampler::from_events(base_trace(500), 11, 20 * NANOS_PER_SEC)
        .take(5_000)
        .collect();
    assert!(events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
}

/// `take()` must be a pure view of the stream: draining the same resampler
/// in arbitrary chunk sizes via `by_ref().take(..)` yields exactly the
/// sequence a straight iteration produces. A resampler that re-derived
/// seeds per call would diverge at the first chunk boundary.
#[test]
fn seed_stable_across_take_boundaries() {
    for (seed, chunks) in [(1u64, [1usize, 7, 64, 500]), (42, [250, 3, 9, 310])] {
        let straight: Vec<_> = SegmentResampler::from_events(base_trace(600), seed, 30 * NANOS_PER_SEC)
            .take(chunks.iter().sum())
            .collect();
        let mut resumed = SegmentResampler::from_events(base_trace(600), seed, 30 * NANOS_PER_SEC);
        let mut chunked = Vec::new();
        for n in chunks {
            chunked.extend(resumed.by_ref().take(n));
        }
        assert_eq!(straight, chunked, "seed {seed} diverged at a take() seam");
    }
}

/// Same property in spec mode, where each segment reseeds a synthetic
/// trace: the chunk boundaries must not shift which arrival seeds the
/// segments draw.
#[test]
fn spec_mode_seed_stable_across_take_boundaries() {
    let make = || {
        SegmentResampler::from_spec_with_segment(
            WorkloadSpec::paper(4096).with_seed(5),
            9,
            NANOS_PER_SEC,
        )
    };
    let straight: Vec<_> = make().take(1_200).collect();
    let mut resumed = make();
    let mut chunked = Vec::new();
    for n in [400usize, 1, 399, 400] {
        chunked.extend(resumed.by_ref().take(n));
    }
    assert_eq!(straight, chunked);
}

/// The resampler seed is load-bearing in spec mode: it drives which
/// arrival seeds the segments draw, so two seeds give decorrelated streams
/// while the same seed reproduces the stream exactly.
#[test]
fn spec_mode_seed_selects_the_stream() {
    let stream = |seed: u64| -> Vec<TraceEvent> {
        SegmentResampler::from_spec_with_segment(
            WorkloadSpec::paper(4096).with_seed(5),
            seed,
            NANOS_PER_SEC,
        )
        .take(2_000)
        .collect()
    };
    assert_eq!(stream(9), stream(9), "same seed must reproduce the stream");
    assert_ne!(stream(9), stream(10), "different seeds must decorrelate");
    // Re-based timestamps stay sorted across the reseeded windows.
    assert!(stream(9).windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
}
