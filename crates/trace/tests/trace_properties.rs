//! Property tests of the workload model: calibration invariants hold for
//! arbitrary (valid) specs, not just the paper preset.

use proptest::prelude::*;

use flash_trace::{parse_trace, write_trace, Op, SegmentResampler, SyntheticTrace, WorkloadSpec};

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        256u64..20_000, // logical pages
        0.05f64..1.0,   // written fraction
        0.2f64..50.0,   // writes/s
        0.0f64..50.0,   // reads/s
        0.01f64..0.5,   // hot fraction
        0.0f64..1.0,    // frozen fraction
        0.5f64..1.0,    // hot write probability
        0.0f64..1.6,    // zipf exponent
        1.0f64..32.0,   // mean burst
        any::<bool>(),  // diurnal
        any::<u64>(),   // seed
    )
        .prop_map(
            |(pages, wf, w, r, hot, frozen, hwp, zipf, burst, diurnal, seed)| {
                let mut spec = WorkloadSpec::paper(pages).with_seed(seed);
                spec.written_fraction = wf;
                spec.writes_per_sec = w;
                spec.reads_per_sec = r;
                spec.hot_fraction = hot;
                spec.frozen_fraction = frozen;
                spec.hot_write_prob = hwp;
                spec.zipf_exponent = zipf;
                spec.mean_burst_pages = burst;
                spec.diurnal = diurnal;
                spec
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Any valid spec yields monotone timestamps and in-range addresses.
    #[test]
    fn any_spec_is_well_formed(spec in arb_spec()) {
        let events: Vec<_> = SyntheticTrace::new(spec.clone()).take(3_000).collect();
        prop_assert!(events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        prop_assert!(events.iter().all(|e| e.lba < spec.logical_pages));
    }

    /// Steady-state writes never touch the frozen region (identified via
    /// the fill sequence tail).
    #[test]
    fn frozen_region_is_immutable(spec in arb_spec()) {
        let frozen: std::collections::HashSet<u64> = spec
            .fill_events()
            .skip(spec.updatable_pages() as usize)
            .map(|e| e.lba)
            .collect();
        for e in SyntheticTrace::new(spec.clone()).take(3_000) {
            if e.op == Op::Write {
                prop_assert!(!frozen.contains(&e.lba));
            }
        }
    }

    /// The fill sequence is a bijection onto the footprint.
    #[test]
    fn fill_is_bijective(spec in arb_spec()) {
        let mut seen = std::collections::HashSet::new();
        for e in spec.fill_events() {
            prop_assert!(e.lba < spec.logical_pages);
            prop_assert!(seen.insert(e.lba), "duplicate fill lba {}", e.lba);
        }
        prop_assert_eq!(seen.len() as u64, spec.footprint_pages());
    }

    /// Same seed reproduces the trace; resampling with a different arrival
    /// seed keeps the same footprint.
    #[test]
    fn determinism_and_footprint_stability(spec in arb_spec(), reseed in any::<u64>()) {
        let a: Vec<_> = SyntheticTrace::new(spec.clone()).take(500).collect();
        let b: Vec<_> = SyntheticTrace::new(spec.clone()).take(500).collect();
        prop_assert_eq!(a, b);

        let footprint: std::collections::HashSet<u64> =
            spec.fill_events().map(|e| e.lba).collect();
        let reseeded = spec.clone().with_arrival_seed(reseed);
        for e in SyntheticTrace::new(reseeded).take(1_000) {
            if e.op == Op::Write {
                prop_assert!(footprint.contains(&e.lba));
            }
        }
    }

    /// Text round trip preserves any event sequence the generator emits.
    #[test]
    fn format_round_trips_generated_traces(spec in arb_spec()) {
        let events: Vec<_> = SyntheticTrace::new(spec).take(200).collect();
        let text = write_trace(&events);
        prop_assert_eq!(parse_trace(&text).unwrap(), events);
    }

    /// The resampler never exceeds the logical space and stays monotone for
    /// arbitrary segment lengths.
    #[test]
    fn resampler_well_formed(spec in arb_spec(), seg_s in 1u64..1200, seed in any::<u64>()) {
        let resampler = SegmentResampler::from_spec_with_segment(
            spec.clone(),
            seed,
            seg_s * 1_000_000_000,
        );
        let events: Vec<_> = resampler.take(2_000).collect();
        prop_assert_eq!(events.len(), 2_000);
        prop_assert!(events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        prop_assert!(events.iter().all(|e| e.lba < spec.logical_pages));
    }
}
