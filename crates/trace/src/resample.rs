//! The paper's "virtually unlimited" trace: random 10-minute segments.

use swl_core::rng::SplitMix64;

use crate::event::{HostNanos, TraceEvent, NANOS_PER_SEC};
use crate::synthetic::{SyntheticTrace, WorkloadSpec};

/// Default segment length: the paper's 10 minutes.
pub const DEFAULT_SEGMENT_NS: u64 = 600 * NANOS_PER_SEC;

/// An infinite trace assembled from randomly chosen fixed-length segments,
/// reproducing the paper's construction: "a virtually unlimited experiment
/// trace was derived ... by randomly picking up any 10-minute trace segment
/// in the trace".
///
/// Two sources are supported:
///
/// - [`SegmentResampler::from_events`] replays windows of a concrete,
///   finite base trace (exactly the paper's method);
/// - [`SegmentResampler::from_spec`] synthesises each segment directly from
///   a [`WorkloadSpec`] with a per-segment seed. Because the base trace here
///   is itself synthetic and time-homogeneous, regenerating a segment is
///   statistically identical to cutting a window out of a pre-generated
///   month — without holding millions of events in memory.
///
/// Timestamps of the output are continuous: each segment is shifted to start
/// where the previous one ended.
///
/// # Example
///
/// ```
/// use flash_trace::{SegmentResampler, WorkloadSpec};
///
/// let spec = WorkloadSpec::paper(4096).with_seed(3);
/// let mut unlimited = SegmentResampler::from_spec(spec, 9);
/// let first = unlimited.next().expect("infinite trace");
/// assert!(first.lba < 4096);
/// ```
#[derive(Debug, Clone)]
pub struct SegmentResampler {
    source: Source,
    segment_ns: u64,
    rng: SplitMix64,
    /// Host-time offset where the current segment begins in output time.
    epoch_ns: HostNanos,
    current: Segment,
}

#[derive(Debug, Clone)]
enum Source {
    Spec(WorkloadSpec),
    Events {
        events: std::sync::Arc<[TraceEvent]>,
        span_ns: u64,
    },
}

#[derive(Debug, Clone)]
enum Segment {
    /// Live generator, cut off at `end_ns` (generator-local time).
    Spec {
        trace: Box<SyntheticTrace>,
        end_ns: HostNanos,
    },
    /// Index range into the base events plus the window's start time.
    Events {
        next: usize,
        end: usize,
        window_start_ns: HostNanos,
    },
}

impl SegmentResampler {
    /// Unlimited trace over synthetic segments drawn from `spec`.
    pub fn from_spec(spec: WorkloadSpec, seed: u64) -> Self {
        Self::from_spec_with_segment(spec, seed, DEFAULT_SEGMENT_NS)
    }

    /// Unlimited trace over synthetic segments of a custom length.
    ///
    /// # Panics
    ///
    /// Panics if `segment_ns` is zero.
    pub fn from_spec_with_segment(spec: WorkloadSpec, seed: u64, segment_ns: u64) -> Self {
        assert!(segment_ns > 0, "segment length must be positive");
        let mut resampler = Self {
            source: Source::Spec(spec),
            segment_ns,
            rng: SplitMix64::new(seed),
            epoch_ns: 0,
            current: Segment::Events {
                next: 0,
                end: 0,
                window_start_ns: 0,
            },
        };
        resampler.advance_segment();
        resampler.epoch_ns = 0;
        resampler
    }

    /// Unlimited trace replaying windows of a concrete base trace.
    ///
    /// # Panics
    ///
    /// Panics if `events` is empty, unsorted, or shorter than one segment.
    pub fn from_events(events: Vec<TraceEvent>, seed: u64, segment_ns: u64) -> Self {
        assert!(!events.is_empty(), "base trace must be non-empty");
        assert!(
            events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns),
            "base trace must be sorted by time"
        );
        assert!(segment_ns > 0, "segment length must be positive");
        let span_ns = events.last().unwrap().at_ns + 1;
        assert!(span_ns >= segment_ns, "base trace shorter than one segment");
        let mut resampler = Self {
            source: Source::Events {
                events: events.into(),
                span_ns,
            },
            segment_ns,
            rng: SplitMix64::new(seed),
            epoch_ns: 0,
            current: Segment::Events {
                next: 0,
                end: 0,
                window_start_ns: 0,
            },
        };
        resampler.advance_segment();
        resampler.epoch_ns = 0;
        resampler
    }

    fn advance_segment(&mut self) {
        self.epoch_ns += self.segment_ns;
        match &self.source {
            Source::Spec(spec) => {
                let seg_seed = self.rng.next_u64();
                let seg_spec = spec.clone().with_arrival_seed(seg_seed);
                self.current = Segment::Spec {
                    trace: Box::new(SyntheticTrace::new(seg_spec)),
                    end_ns: self.segment_ns,
                };
            }
            Source::Events { events, span_ns } => {
                let max_start = span_ns.saturating_sub(self.segment_ns);
                let window_start_ns = if max_start == 0 {
                    0
                } else {
                    self.rng.range_inclusive_u64(0, max_start)
                };
                let window_end_ns = window_start_ns + self.segment_ns;
                let next = events.partition_point(|e| e.at_ns < window_start_ns);
                let end = events.partition_point(|e| e.at_ns < window_end_ns);
                self.current = Segment::Events {
                    next,
                    end,
                    window_start_ns,
                };
            }
        }
    }
}

impl Iterator for SegmentResampler {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        loop {
            match &mut self.current {
                Segment::Spec { trace, end_ns } => {
                    // SyntheticTrace is infinite, so next() always yields.
                    let event = trace.next()?;
                    if event.at_ns < *end_ns {
                        return Some(TraceEvent {
                            at_ns: self.epoch_ns + event.at_ns,
                            ..event
                        });
                    }
                }
                Segment::Events {
                    next,
                    end,
                    window_start_ns,
                } => {
                    if next < end {
                        let Source::Events { events, .. } = &self.source else {
                            unreachable!("events segment requires events source");
                        };
                        let event = events[*next];
                        *next += 1;
                        return Some(TraceEvent {
                            at_ns: self.epoch_ns + (event.at_ns - *window_start_ns),
                            ..event
                        });
                    }
                }
            }
            self.advance_segment();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Op;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::paper(4096).with_seed(5)
    }

    #[test]
    fn spec_mode_is_infinite_and_monotone() {
        let events: Vec<_> = SegmentResampler::from_spec(spec(), 1)
            .take(50_000)
            .collect();
        assert_eq!(events.len(), 50_000);
        assert!(events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    }

    #[test]
    fn spec_mode_is_deterministic() {
        let a: Vec<_> = SegmentResampler::from_spec(spec(), 2).take(5000).collect();
        let b: Vec<_> = SegmentResampler::from_spec(spec(), 2).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn spec_mode_preserves_rates() {
        let events: Vec<_> = SegmentResampler::from_spec(spec(), 3)
            .take(100_000)
            .collect();
        let span_s = events.last().unwrap().at_ns as f64 / NANOS_PER_SEC as f64;
        let writes = events.iter().filter(|e| e.op == Op::Write).count() as f64;
        let rate = writes / span_s;
        assert!(
            (rate - 1.82).abs() / 1.82 < 0.15,
            "write rate {rate:.2}/s drifted from spec"
        );
    }

    #[test]
    fn events_mode_replays_windows_continuously() {
        // Base: one event per second for 100 s.
        let base: Vec<_> = (0..100)
            .map(|i| TraceEvent::write(i * NANOS_PER_SEC, i))
            .collect();
        let seg = 10 * NANOS_PER_SEC;
        let events: Vec<_> = SegmentResampler::from_events(base, 4, seg)
            .take(200)
            .collect();
        assert!(events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        // Timestamps fall inside consecutive 10 s output windows.
        for (i, e) in events.iter().enumerate() {
            let window = e.at_ns / seg;
            let prev_window = events[..i].last().map_or(0, |p| p.at_ns / seg);
            assert!(window >= prev_window);
        }
    }

    #[test]
    fn events_mode_draws_varied_windows() {
        let base: Vec<_> = (0..10_000)
            .map(|i| TraceEvent::write(i * NANOS_PER_SEC / 10, i % 512))
            .collect();
        let events: Vec<_> = SegmentResampler::from_events(base, 5, 60 * NANOS_PER_SEC)
            .take(20_000)
            .collect();
        // With random windows, the LBA sequence should not be one long
        // arithmetic progression.
        let strictly_sequential = events
            .windows(2)
            .filter(|w| w[1].lba == w[0].lba + 1)
            .count();
        assert!(strictly_sequential < events.len() - 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_base_rejected() {
        SegmentResampler::from_events(Vec::new(), 0, 1);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_base_rejected() {
        let base = vec![TraceEvent::write(10, 0), TraceEvent::write(5, 1)];
        SegmentResampler::from_events(base, 0, 1);
    }

    #[test]
    #[should_panic(expected = "shorter than one segment")]
    fn short_base_rejected() {
        let base = vec![TraceEvent::write(0, 0)];
        SegmentResampler::from_events(base, 0, NANOS_PER_SEC);
    }
}
