//! Sector-to-page address mapping.
//!
//! Host traces (like the paper's one-month NTFS trace with its 2,097,152
//! LBAs on a 1 GiB chip) address 512-byte *sectors*, while NAND translation
//! layers operate on flash *pages* (2 KiB for large-block chips). This
//! module converts sector-granularity events into page-granularity events.

use crate::event::TraceEvent;

/// Converts sector-addressed trace events into page-addressed ones.
///
/// A sector event covering `[lba, lba + len)` maps to the page range that
/// contains those sectors; partial-page writes become whole-page writes
/// (read-modify-write, as an FTL without sub-page mapping must do).
///
/// # Example
///
/// ```
/// use flash_trace::{SectorMapper, TraceEvent};
///
/// let mapper = SectorMapper::new(2048, 512); // 4 sectors per page
/// let event = TraceEvent { at_ns: 0, op: flash_trace::Op::Write, lba: 6, len: 3 };
/// let paged = mapper.map_event(event);
/// assert_eq!(paged.lba, 1);  // sectors 6..9 live in pages 1..3
/// assert_eq!(paged.len, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectorMapper {
    sectors_per_page: u64,
}

impl SectorMapper {
    /// Builds a mapper for `page_bytes`-sized pages and
    /// `sector_bytes`-sized sectors.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero or the page size is not a multiple of
    /// the sector size.
    pub fn new(page_bytes: u32, sector_bytes: u32) -> Self {
        assert!(page_bytes > 0 && sector_bytes > 0, "sizes must be positive");
        assert!(
            page_bytes.is_multiple_of(sector_bytes),
            "page size must be a multiple of the sector size"
        );
        Self {
            sectors_per_page: u64::from(page_bytes / sector_bytes),
        }
    }

    /// Sectors per page.
    pub fn sectors_per_page(&self) -> u64 {
        self.sectors_per_page
    }

    /// Maps one sector event to the covering page event.
    pub fn map_event(&self, event: TraceEvent) -> TraceEvent {
        let first_page = event.lba / self.sectors_per_page;
        let last_sector = event.lba + u64::from(event.len.max(1)) - 1;
        let last_page = last_sector / self.sectors_per_page;
        TraceEvent {
            at_ns: event.at_ns,
            op: event.op,
            lba: first_page,
            len: (last_page - first_page + 1) as u32,
        }
    }

    /// Adapts a sector-event iterator into a page-event iterator.
    pub fn map_trace<I>(self, events: I) -> MapTrace<I::IntoIter>
    where
        I: IntoIterator<Item = TraceEvent>,
    {
        MapTrace {
            mapper: self,
            inner: events.into_iter(),
        }
    }

    /// Page capacity corresponding to a sector capacity (rounded up).
    pub fn pages_for_sectors(&self, sectors: u64) -> u64 {
        sectors.div_ceil(self.sectors_per_page)
    }
}

/// Iterator adapter returned by [`SectorMapper::map_trace`].
#[derive(Debug, Clone)]
pub struct MapTrace<I> {
    mapper: SectorMapper,
    inner: I,
}

impl<I: Iterator<Item = TraceEvent>> Iterator for MapTrace<I> {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        self.inner.next().map(|e| self.mapper.map_event(e))
    }
}

/// Convenience: the paper's configuration — 512 B sectors on 2 KiB pages.
impl Default for SectorMapper {
    fn default() -> Self {
        Self::new(2048, 512)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Op;

    #[test]
    fn single_sector_maps_to_its_page() {
        let m = SectorMapper::new(2048, 512);
        for sector in 0..8u64 {
            let e = m.map_event(TraceEvent::write(0, sector));
            assert_eq!(e.lba, sector / 4);
            assert_eq!(e.len, 1);
        }
    }

    #[test]
    fn spanning_run_covers_both_pages() {
        let m = SectorMapper::new(2048, 512);
        let e = m.map_event(TraceEvent {
            at_ns: 5,
            op: Op::Write,
            lba: 3,
            len: 2, // sectors 3..5 → pages 0..2
        });
        assert_eq!((e.lba, e.len, e.at_ns), (0, 2, 5));
    }

    #[test]
    fn aligned_full_page_run() {
        let m = SectorMapper::new(2048, 512);
        let e = m.map_event(TraceEvent {
            at_ns: 0,
            op: Op::Read,
            lba: 8,
            len: 4,
        });
        assert_eq!((e.lba, e.len), (2, 1));
    }

    #[test]
    fn map_trace_adapts_iterators() {
        let m = SectorMapper::default();
        let sectors = vec![TraceEvent::write(0, 0), TraceEvent::write(1, 7)];
        let pages: Vec<_> = m.map_trace(sectors).collect();
        assert_eq!(pages[0].lba, 0);
        assert_eq!(pages[1].lba, 1);
    }

    #[test]
    fn paper_lba_count_converts() {
        let m = SectorMapper::default();
        assert_eq!(m.pages_for_sectors(2_097_152), 524_288);
    }

    #[test]
    fn one_to_one_when_sizes_match() {
        let m = SectorMapper::new(512, 512);
        let e = m.map_event(TraceEvent::write(0, 99));
        assert_eq!((e.lba, e.len), (99, 1));
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn non_multiple_rejected() {
        SectorMapper::new(2048, 500);
    }
}
