//! FAT-filesystem traffic modelling.
//!
//! Figure 1 of the paper puts a file system ("e.g., DOS FAT") on top of the
//! Flash Translation Layer, and FAT is the canonical generator of the
//! hot/cold pattern static wear leveling exists for: every file operation
//! rewrites a **file allocation table** page (hundreds of cluster entries
//! share one page, so the same few LBAs absorb every metadata update),
//! while file *contents* sit untouched until deleted.
//!
//! [`FatVolume`] lays out a volume (reserved page, FAT region, root
//! directory, data clusters) and exposes file-level operations that emit
//! the exact per-page [`TraceEvent`] stream the operation causes on a real
//! FAT implementation; [`FatSession`] scripts a seeded, endless mix of
//! creates, appends, rewrites and deletes over it. Feed the stream to any
//! translation layer to study what a filesystem does to flash wear.
//!
//! # Example
//!
//! ```
//! use flash_trace::fat::{FatSession, FatSessionSpec, FatVolume};
//!
//! # fn main() -> Result<(), flash_trace::fat::FatError> {
//! let volume = FatVolume::new(4096)?;
//! assert!(volume.fat_pages() > 0);
//!
//! let session = FatSession::new(volume, FatSessionSpec::default().with_seed(7));
//! let events: Vec<_> = session.take(1000).collect();
//! assert!(!events.is_empty());
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use swl_core::rng::SplitMix64;

use crate::event::{HostNanos, TraceEvent};

/// Cluster entries per FAT page — FAT16 entries on a 2 KiB page.
const ENTRIES_PER_FAT_PAGE: u64 = 1024;

/// Directory entries per directory page (32-byte entries on 2 KiB).
const DIR_ENTRIES_PER_PAGE: u64 = 64;

/// Errors from building a [`FatVolume`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FatError {
    /// The volume needs at least one data cluster after metadata regions.
    TooSmall {
        /// Pages offered.
        pages: u64,
    },
}

impl fmt::Display for FatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FatError::TooSmall { pages } => {
                write!(
                    f,
                    "volume of {pages} pages leaves no room for data clusters"
                )
            }
        }
    }
}

impl Error for FatError {}

/// A file handle inside a [`FatVolume`].
pub type FileId = u64;

#[derive(Debug, Clone)]
struct File {
    /// Cluster chain, in order.
    clusters: Vec<u64>,
    /// Directory page holding this file's entry.
    dir_page: u64,
}

/// An in-RAM FAT volume that emits the page-level write traffic of its
/// file operations.
///
/// The modelled layout over `pages` logical pages:
///
/// ```text
/// [0]           boot/reserved page
/// [1 .. f]      FAT region: one page per 1024 cluster entries
/// [f .. f+d]    root directory (1 page per 64 entries, 4 pages)
/// [f+d ..]      data clusters (one page each)
/// ```
#[derive(Debug, Clone)]
pub struct FatVolume {
    pages: u64,
    fat_start: u64,
    fat_pages: u64,
    dir_start: u64,
    dir_pages: u64,
    data_start: u64,
    /// Free data clusters (absolute page numbers), LIFO.
    free: Vec<u64>,
    files: HashMap<FileId, File>,
    next_file: FileId,
    next_dir_slot: u64,
}

impl FatVolume {
    /// Lays out a volume over `pages` logical pages.
    ///
    /// # Errors
    ///
    /// Returns [`FatError::TooSmall`] when no data cluster remains after
    /// the metadata regions.
    pub fn new(pages: u64) -> Result<Self, FatError> {
        let fat_start = 1;
        let fat_pages = pages.div_ceil(ENTRIES_PER_FAT_PAGE).max(1);
        let dir_start = fat_start + fat_pages;
        let dir_pages = 4;
        let data_start = dir_start + dir_pages;
        if data_start >= pages {
            return Err(FatError::TooSmall { pages });
        }
        Ok(Self {
            pages,
            fat_start,
            fat_pages,
            dir_start,
            dir_pages,
            data_start,
            free: (data_start..pages).rev().collect(),
            files: HashMap::new(),
            next_file: 0,
            next_dir_slot: 0,
        })
    }

    /// Total pages of the volume.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Pages occupied by the file allocation table.
    pub fn fat_pages(&self) -> u64 {
        self.fat_pages
    }

    /// First data-cluster page.
    pub fn data_start(&self) -> u64 {
        self.data_start
    }

    /// Free data clusters remaining.
    pub fn free_clusters(&self) -> u64 {
        self.free.len() as u64
    }

    /// Live files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Whether `lba` lies in a metadata region (FAT or directory).
    pub fn is_metadata(&self, lba: u64) -> bool {
        lba < self.data_start
    }

    /// FAT page covering the entry of data cluster `cluster`.
    fn fat_page_of(&self, cluster: u64) -> u64 {
        self.fat_start + (cluster - self.data_start) / ENTRIES_PER_FAT_PAGE
    }

    fn dir_page_of_slot(&self, slot: u64) -> u64 {
        self.dir_start + (slot / DIR_ENTRIES_PER_PAGE) % self.dir_pages
    }

    /// Creates a file of `clusters` data clusters, emitting its write
    /// traffic (directory entry, FAT chain, data) into `out`. Returns the
    /// file id, or `None` when the volume lacks space.
    pub fn create(
        &mut self,
        clusters: u64,
        at_ns: HostNanos,
        out: &mut Vec<TraceEvent>,
    ) -> Option<FileId> {
        if clusters == 0 || (self.free.len() as u64) < clusters {
            return None;
        }
        let id = self.next_file;
        self.next_file += 1;
        let dir_page = self.dir_page_of_slot(self.next_dir_slot);
        self.next_dir_slot += 1;

        let mut chain = Vec::with_capacity(clusters as usize);
        for _ in 0..clusters {
            let cluster = self.free.pop().expect("checked above");
            chain.push(cluster);
        }
        // Directory entry (name, first cluster, size): one metadata write.
        out.push(TraceEvent::write(at_ns, dir_page));
        // FAT chain: one read-modify-write per touched FAT page.
        let mut last_fat_page = u64::MAX;
        for &cluster in &chain {
            let fat_page = self.fat_page_of(cluster);
            if fat_page != last_fat_page {
                out.push(TraceEvent::write(at_ns, fat_page));
                last_fat_page = fat_page;
            }
        }
        // Data clusters.
        for &cluster in &chain {
            out.push(TraceEvent::write(at_ns, cluster));
        }
        self.files.insert(
            id,
            File {
                clusters: chain,
                dir_page,
            },
        );
        Some(id)
    }

    /// Appends `clusters` data clusters to a file, emitting the traffic.
    /// Returns `false` when the file does not exist or space ran out.
    pub fn append(
        &mut self,
        id: FileId,
        clusters: u64,
        at_ns: HostNanos,
        out: &mut Vec<TraceEvent>,
    ) -> bool {
        if clusters == 0 || (self.free.len() as u64) < clusters {
            return false;
        }
        let Some(file) = self.files.get(&id) else {
            return false;
        };
        let dir_page = file.dir_page;
        let tail = *file.clusters.last().expect("files have ≥1 cluster");
        let mut chain = Vec::with_capacity(clusters as usize);
        for _ in 0..clusters {
            chain.push(self.free.pop().expect("checked above"));
        }
        // Linking the old tail to the new chain rewrites the tail's FAT
        // page, then each new cluster's page.
        let mut last_fat_page = self.fat_page_of(tail);
        out.push(TraceEvent::write(at_ns, last_fat_page));
        for &cluster in &chain {
            let fat_page = self.fat_page_of(cluster);
            if fat_page != last_fat_page {
                out.push(TraceEvent::write(at_ns, fat_page));
                last_fat_page = fat_page;
            }
        }
        for &cluster in &chain {
            out.push(TraceEvent::write(at_ns, cluster));
        }
        // Size update in the directory entry.
        out.push(TraceEvent::write(at_ns, dir_page));
        self.files
            .get_mut(&id)
            .expect("checked above")
            .clusters
            .extend(chain);
        true
    }

    /// Rewrites one existing cluster of a file in place (logical
    /// overwrite): a data write plus the directory timestamp update.
    /// Returns `false` when the file does not exist.
    pub fn rewrite(
        &mut self,
        id: FileId,
        cluster_index: u64,
        at_ns: HostNanos,
        out: &mut Vec<TraceEvent>,
    ) -> bool {
        let Some(file) = self.files.get(&id) else {
            return false;
        };
        let cluster = file.clusters[(cluster_index as usize) % file.clusters.len()];
        out.push(TraceEvent::write(at_ns, cluster));
        out.push(TraceEvent::write(at_ns, file.dir_page));
        true
    }

    /// Reads a whole file (per-cluster reads), if it exists.
    pub fn read(&self, id: FileId, at_ns: HostNanos, out: &mut Vec<TraceEvent>) -> bool {
        let Some(file) = self.files.get(&id) else {
            return false;
        };
        for &cluster in &file.clusters {
            out.push(TraceEvent::read(at_ns, cluster));
        }
        true
    }

    /// Deletes a file: frees its chain (FAT page rewrites) and clears the
    /// directory entry. Data pages are *not* touched — exactly why deleted
    /// file contents linger as invalid pages for the GC.
    pub fn delete(&mut self, id: FileId, at_ns: HostNanos, out: &mut Vec<TraceEvent>) -> bool {
        let Some(file) = self.files.remove(&id) else {
            return false;
        };
        out.push(TraceEvent::write(at_ns, file.dir_page));
        let mut last_fat_page = u64::MAX;
        for &cluster in &file.clusters {
            let fat_page = self.fat_page_of(cluster);
            if fat_page != last_fat_page {
                out.push(TraceEvent::write(at_ns, fat_page));
                last_fat_page = fat_page;
            }
            self.free.push(cluster);
        }
        true
    }

    /// An arbitrary live file id (deterministic order), if any.
    fn some_file(&self, nth: usize) -> Option<FileId> {
        if self.files.is_empty() {
            return None;
        }
        let mut ids: Vec<FileId> = self.files.keys().copied().collect();
        ids.sort_unstable();
        Some(ids[nth % ids.len()])
    }
}

/// Parameters of a scripted FAT session.
#[derive(Debug, Clone, PartialEq)]
pub struct FatSessionSpec {
    /// Mean file size in clusters (geometric distribution).
    pub mean_file_clusters: f64,
    /// Target volume fullness; above it the session deletes, below it
    /// creates.
    pub target_utilization: f64,
    /// Share of the data area filled at session start with *archive* files
    /// that are never deleted or rewritten — the media library / installed
    /// software of a real volume, and the cold data SWL exists for.
    pub archive_utilization: f64,
    /// Probability that an op on an existing file is a rewrite (vs read).
    pub rewrite_prob: f64,
    /// Host time between file operations, nanoseconds.
    pub op_gap_ns: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FatSessionSpec {
    fn default() -> Self {
        Self {
            mean_file_clusters: 12.0,
            target_utilization: 0.6,
            archive_utilization: 0.35,
            rewrite_prob: 0.5,
            op_gap_ns: 500_000_000, // one op per half second
            seed: 0,
        }
    }
}

impl FatSessionSpec {
    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// An endless, seeded stream of FAT file operations rendered as page-level
/// trace events. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct FatSession {
    volume: FatVolume,
    spec: FatSessionSpec,
    rng: SplitMix64,
    now_ns: HostNanos,
    queue: Vec<TraceEvent>,
    next: usize,
    op_counter: usize,
    /// Archive files: never deleted or rewritten.
    protected: std::collections::HashSet<FileId>,
}

impl FatSession {
    /// Starts a session on a freshly formatted volume, first loading the
    /// configured archive (whose write traffic is part of the stream).
    pub fn new(volume: FatVolume, spec: FatSessionSpec) -> Self {
        let rng = SplitMix64::new(spec.seed);
        let mut session = Self {
            volume,
            spec,
            rng,
            now_ns: 0,
            queue: Vec::new(),
            next: 0,
            op_counter: 0,
            protected: std::collections::HashSet::new(),
        };
        session.load_archive();
        session
    }

    /// Fills `archive_utilization` of the data area with permanent files.
    fn load_archive(&mut self) {
        let data_pages = self.volume.pages - self.volume.data_start;
        let target = (data_pages as f64 * self.spec.archive_utilization) as u64;
        let mut queue = std::mem::take(&mut self.queue);
        let mut loaded = 0u64;
        while loaded < target {
            let clusters = self.geometric_clusters().min(target - loaded).max(1);
            self.now_ns += self.spec.op_gap_ns / 16; // bulk load is fast
            match self.volume.create(clusters, self.now_ns, &mut queue) {
                Some(id) => {
                    self.protected.insert(id);
                    loaded += clusters;
                }
                None => break,
            }
        }
        self.queue = queue;
    }

    /// The volume being exercised.
    pub fn volume(&self) -> &FatVolume {
        &self.volume
    }

    fn geometric_clusters(&mut self) -> u64 {
        let p = 1.0 / self.spec.mean_file_clusters.max(1.0);
        let mut n = 1u64;
        while self.rng.next_f64() > p && n < 512 {
            n += 1;
        }
        n
    }

    fn run_one_op(&mut self) {
        self.queue.clear();
        self.next = 0;
        self.now_ns += self.spec.op_gap_ns;
        self.op_counter += 1;

        let data_pages = (self.volume.pages - self.volume.data_start) as f64;
        let used = data_pages - self.volume.free_clusters() as f64;
        let utilization = used / data_pages;

        let mut queue = std::mem::take(&mut self.queue);
        let churn_files = self.volume.file_count() - self.protected.len();
        if utilization > self.spec.target_utilization && churn_files > 1 {
            // Over target: delete an old (non-archive) file.
            for attempt in 0..8 {
                let nth = self.rng.range_usize(0..self.volume.file_count()) + attempt;
                if let Some(id) = self.volume.some_file(nth) {
                    if !self.protected.contains(&id) {
                        self.volume.delete(id, self.now_ns, &mut queue);
                        break;
                    }
                }
            }
        } else if utilization < self.spec.target_utilization * 0.9 || churn_files == 0 {
            // Under target: create.
            let clusters = self.geometric_clusters();
            self.volume.create(clusters, self.now_ns, &mut queue);
        } else {
            // Near target: work on an existing file. Archive files are
            // read but never rewritten.
            let nth = self.rng.range_usize(0..self.volume.file_count().max(1));
            if let Some(id) = self.volume.some_file(nth) {
                if !self.protected.contains(&id) && self.rng.next_f64() < self.spec.rewrite_prob {
                    let index = self.rng.next_u64();
                    self.volume.rewrite(id, index, self.now_ns, &mut queue);
                } else {
                    self.volume.read(id, self.now_ns, &mut queue);
                }
            }
        }
        self.queue = queue;
    }
}

impl Iterator for FatSession {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        loop {
            if self.next < self.queue.len() {
                let event = self.queue[self.next];
                self.next += 1;
                return Some(event);
            }
            self.run_one_op();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Op;

    #[test]
    fn layout_regions_are_ordered() {
        let v = FatVolume::new(4096).unwrap();
        assert_eq!(v.fat_pages(), 4);
        assert!(v.data_start() > v.fat_pages());
        assert_eq!(v.free_clusters(), 4096 - v.data_start());
    }

    #[test]
    fn tiny_volume_rejected() {
        assert!(matches!(FatVolume::new(4), Err(FatError::TooSmall { .. })));
    }

    #[test]
    fn create_emits_dir_fat_and_data_writes() {
        let mut v = FatVolume::new(4096).unwrap();
        let mut out = Vec::new();
        let id = v.create(5, 10, &mut out).expect("fits");
        assert_eq!(v.file_count(), 1);
        let metadata = out.iter().filter(|e| v.is_metadata(e.lba)).count();
        let data = out.iter().filter(|e| !v.is_metadata(e.lba)).count();
        assert_eq!(data, 5);
        assert!(metadata >= 2, "dir + ≥1 fat page: {out:?}");
        assert!(out.iter().all(|e| e.at_ns == 10));

        let mut reads = Vec::new();
        assert!(v.read(id, 20, &mut reads));
        assert_eq!(reads.len(), 5);
        assert!(reads.iter().all(|e| e.op == Op::Read));
    }

    #[test]
    fn delete_frees_clusters_without_touching_data() {
        let mut v = FatVolume::new(4096).unwrap();
        let mut out = Vec::new();
        let id = v.create(8, 0, &mut out).unwrap();
        let free_before = v.free_clusters();
        out.clear();
        assert!(v.delete(id, 1, &mut out));
        assert_eq!(v.free_clusters(), free_before + 8);
        assert!(
            out.iter().all(|e| v.is_metadata(e.lba)),
            "delete touches only metadata: {out:?}"
        );
        assert_eq!(v.file_count(), 0);
    }

    #[test]
    fn append_links_through_the_fat() {
        let mut v = FatVolume::new(4096).unwrap();
        let mut out = Vec::new();
        let id = v.create(2, 0, &mut out).unwrap();
        out.clear();
        assert!(v.append(id, 3, 5, &mut out));
        let data = out.iter().filter(|e| !v.is_metadata(e.lba)).count();
        assert_eq!(data, 3);
        let mut reads = Vec::new();
        v.read(id, 6, &mut reads);
        assert_eq!(reads.len(), 5);
    }

    #[test]
    fn clusters_are_reused_after_delete() {
        let mut v = FatVolume::new(64).unwrap();
        let capacity = v.free_clusters();
        let mut out = Vec::new();
        for _ in 0..10 {
            let id = v.create(capacity / 2, 0, &mut out).unwrap();
            v.delete(id, 0, &mut out);
        }
        assert_eq!(v.free_clusters(), capacity);
    }

    #[test]
    fn create_fails_cleanly_when_full() {
        let mut v = FatVolume::new(64).unwrap();
        let mut out = Vec::new();
        assert!(v.create(v.free_clusters() + 1, 0, &mut out).is_none());
        assert!(out.is_empty());
        assert_eq!(v.file_count(), 0);
    }

    #[test]
    fn session_concentrates_writes_on_metadata() {
        let volume = FatVolume::new(4096).unwrap();
        let metadata_limit = volume.data_start();
        let session = FatSession::new(volume, FatSessionSpec::default().with_seed(3));
        let events: Vec<_> = session.take(50_000).collect();
        let writes: Vec<_> = events.iter().filter(|e| e.op == Op::Write).collect();
        let metadata_writes = writes.iter().filter(|e| e.lba < metadata_limit).count();
        let share = metadata_writes as f64 / writes.len() as f64;
        // FAT + directory pages are ~0.2% of the volume but absorb a large
        // share of all writes — the hot/cold pattern SWL exists for.
        assert!(
            share > 0.2,
            "metadata hot spot expected, got {share:.3} over {} writes",
            writes.len()
        );
        assert!(events.iter().all(|e| e.lba < 4096));
        // Timestamps are monotone.
        assert!(events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    }

    #[test]
    fn archive_files_survive_the_whole_session() {
        let volume = FatVolume::new(2048).unwrap();
        let mut session = FatSession::new(volume, FatSessionSpec::default().with_seed(8));
        let archive_ids: Vec<FileId> = session.protected.iter().copied().collect();
        assert!(!archive_ids.is_empty(), "default spec loads an archive");
        for _ in 0..150_000 {
            session.next();
        }
        for id in archive_ids {
            let mut out = Vec::new();
            assert!(
                session.volume.read(id, 0, &mut out),
                "archive file {id} must still exist"
            );
        }
    }

    #[test]
    fn session_is_deterministic() {
        let run = || {
            let volume = FatVolume::new(1024).unwrap();
            FatSession::new(volume, FatSessionSpec::default().with_seed(9))
                .take(5000)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn session_respects_target_utilization() {
        let volume = FatVolume::new(2048).unwrap();
        let data_pages = 2048 - volume.data_start();
        let mut session = FatSession::new(volume, FatSessionSpec::default().with_seed(4));
        for _ in 0..200_000 {
            session.next();
        }
        let used = data_pages - session.volume().free_clusters();
        let utilization = used as f64 / data_pages as f64;
        assert!(
            (0.35..=0.85).contains(&utilization),
            "utilization should hover near the 0.6 target: {utilization:.2}"
        );
        // The archive persists untouched.
        assert!(session.volume().file_count() > 0);
    }
}
