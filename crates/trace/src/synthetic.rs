//! Synthetic trace generation calibrated to the paper's workload statistics.

use swl_core::rng::SplitMix64;

use crate::event::{HostNanos, TraceEvent, NANOS_PER_SEC};
use crate::zipf::Zipf;

/// Gap between the page writes of one burst (10 µs — a host flushing a
/// multi-sector request back to back).
const INTRA_BURST_GAP_NS: u64 = 10_000;

/// Default pages per placement chunk (see [`WorkloadSpec::chunk_pages`]).
const DEFAULT_CHUNK_PAGES: u64 = 16;

/// Parameters of the synthetic workload.
///
/// [`WorkloadSpec::paper`] reproduces the published statistics of the
/// paper's one-month mobile-PC trace; every field can be overridden to
/// explore robustness.
///
/// # Example
///
/// ```
/// use flash_trace::WorkloadSpec;
///
/// let spec = WorkloadSpec::paper(524_288)
///     .with_seed(42)
///     .with_rates(3.0, 1.0);
/// assert_eq!(spec.writes_per_sec, 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Size of the logical page space the host addresses.
    pub logical_pages: u64,
    /// Fraction of the logical space that is ever written (paper: 0.3662).
    pub written_fraction: f64,
    /// Average page writes per second (paper: 1.82).
    pub writes_per_sec: f64,
    /// Average page reads per second (paper: 1.97).
    pub reads_per_sec: f64,
    /// Fraction of the written footprint that is hot.
    pub hot_fraction: f64,
    /// Fraction of the written footprint that is *frozen*: written exactly
    /// once by the fill sequence ([`WorkloadSpec::fill_events`]) and never
    /// updated afterwards — the truly cold data (media files, binaries)
    /// whose pinned blocks motivate static wear leveling.
    pub frozen_fraction: f64,
    /// Probability that a write burst targets the hot set.
    pub hot_write_prob: f64,
    /// Zipf exponent of the skew inside the hot set.
    pub zipf_exponent: f64,
    /// Mean pages per write burst (geometric distribution).
    pub mean_burst_pages: f64,
    /// Enables a diurnal activity envelope (busy days, quiet nights).
    pub diurnal: bool,
    /// RNG seed for arrival randomness; same seed ⇒ identical trace.
    pub seed: u64,
    /// Seed for data *placement* (footprint scatter). Kept separate from
    /// `seed` so segment resampling can vary arrivals while every segment
    /// touches the same logical footprint, exactly as replaying windows of
    /// one concrete trace would.
    pub placement_seed: u64,
    /// Pages per placement chunk: the footprint is scattered across the
    /// logical space in aligned chunks of this size, so short sequential
    /// bursts stay sequential while the footprint as a whole is spread out
    /// the way filesystem allocation spreads files. Smaller chunks scatter
    /// hot data over more NFTL virtual blocks (more merge pressure).
    pub chunk_pages: u64,
}

impl WorkloadSpec {
    /// The paper's workload over a logical space of `logical_pages` pages.
    ///
    /// Hot/cold structure follows the paper's qualitative description
    /// (hot data "often written in burst", non-hot data several times the
    /// hot amount, per the cited SiliconSystems study): 12.5 % of the
    /// written footprint receives 90 % of the writes.
    pub fn paper(logical_pages: u64) -> Self {
        Self {
            logical_pages,
            written_fraction: 0.3662,
            writes_per_sec: 1.82,
            reads_per_sec: 1.97,
            hot_fraction: 0.125,
            frozen_fraction: 0.75,
            hot_write_prob: 0.90,
            zipf_exponent: 0.95,
            mean_burst_pages: 8.0,
            diurnal: false,
            seed: 0,
            placement_seed: 0,
            chunk_pages: DEFAULT_CHUNK_PAGES,
        }
    }

    /// Replaces both the arrival and placement seeds.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.placement_seed = seed;
        self
    }

    /// Replaces only the arrival seed, keeping data placement fixed.
    /// This is what segment resampling uses: different randomness, same
    /// footprint.
    pub fn with_arrival_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the write/read rates (per second).
    pub fn with_rates(mut self, writes_per_sec: f64, reads_per_sec: f64) -> Self {
        self.writes_per_sec = writes_per_sec;
        self.reads_per_sec = reads_per_sec;
        self
    }

    /// Replaces the hot-set shape.
    pub fn with_hot_set(mut self, hot_fraction: f64, hot_write_prob: f64) -> Self {
        self.hot_fraction = hot_fraction;
        self.hot_write_prob = hot_write_prob;
        self
    }

    /// Replaces the frozen fraction of the footprint.
    pub fn with_frozen_fraction(mut self, frozen_fraction: f64) -> Self {
        self.frozen_fraction = frozen_fraction;
        self
    }

    /// Replaces the placement chunk size.
    pub fn with_chunk_pages(mut self, chunk_pages: u64) -> Self {
        self.chunk_pages = chunk_pages;
        self
    }

    /// Enables or disables the diurnal activity envelope.
    pub fn with_diurnal(mut self, diurnal: bool) -> Self {
        self.diurnal = diurnal;
        self
    }

    /// Number of distinct pages that will ever be written.
    pub fn footprint_pages(&self) -> u64 {
        ((self.logical_pages as f64 * self.written_fraction) as u64).clamp(1, self.logical_pages)
    }

    /// Number of frozen (write-once) pages at the top of the footprint.
    pub fn frozen_pages(&self) -> u64 {
        ((self.footprint_pages() as f64 * self.frozen_fraction) as u64)
            .min(self.footprint_pages().saturating_sub(1))
    }

    /// Number of updatable pages (hot + warm) at the bottom of the
    /// footprint.
    pub fn updatable_pages(&self) -> u64 {
        self.footprint_pages() - self.frozen_pages()
    }

    /// Number of pages in the hot set.
    pub fn hot_pages(&self) -> u64 {
        ((self.footprint_pages() as f64 * self.hot_fraction) as u64)
            .clamp(1, self.updatable_pages())
    }

    /// The one-time fill: every footprint page written once at time zero
    /// (dense nanosecond spacing), putting the device in the aged state a
    /// month-old filesystem would have before the steady-state trace runs.
    /// Chain it in front of the trace:
    ///
    /// ```
    /// use flash_trace::{SyntheticTrace, WorkloadSpec};
    ///
    /// let spec = WorkloadSpec::paper(4096).with_seed(1);
    /// let mut full = spec
    ///     .fill_events()
    ///     .chain(SyntheticTrace::new(spec.clone()));
    /// assert!(full.next().is_some());
    /// ```
    pub fn fill_events(&self) -> FillSequence {
        self.validate();
        FillSequence {
            scatter: ChunkScatter::new(
                self.logical_pages,
                self.chunk_pages,
                self.placement_seed ^ 0x5EED_CAFE,
            ),
            logical_pages: self.logical_pages,
            footprint: self.footprint_pages(),
            next: 0,
        }
    }

    fn validate(&self) {
        assert!(self.logical_pages > 0, "logical space must be non-empty");
        assert!(
            (0.0..=1.0).contains(&self.written_fraction) && self.written_fraction > 0.0,
            "written_fraction must be in (0, 1]"
        );
        assert!(self.writes_per_sec > 0.0, "write rate must be positive");
        assert!(self.reads_per_sec >= 0.0, "read rate must be non-negative");
        assert!(
            (0.0..=1.0).contains(&self.hot_write_prob),
            "hot_write_prob must be a probability"
        );
        assert!(
            self.hot_fraction > 0.0 && self.hot_fraction <= 1.0,
            "hot_fraction must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.frozen_fraction),
            "frozen_fraction must be in [0, 1]"
        );
        assert!(
            self.mean_burst_pages >= 1.0,
            "bursts hold at least one page"
        );
    }
}

/// Scatters footprint chunks across the logical space with an affine
/// bijection `c ↦ (a·c + b) mod n` over chunk indices.
#[derive(Debug, Clone)]
struct ChunkScatter {
    chunk_pages: u64,
    chunks: u64,
    multiplier: u64,
    offset: u64,
}

impl ChunkScatter {
    fn new(logical_pages: u64, chunk_pages: u64, seed: u64) -> Self {
        assert!(chunk_pages > 0, "chunk_pages must be positive");
        let chunks = logical_pages.div_ceil(chunk_pages).max(1);
        // Pick a multiplier coprime to `chunks` near the golden ratio point.
        let mut multiplier = ((chunks as f64 * 0.618) as u64) | 1;
        multiplier = multiplier.max(1);
        while gcd(multiplier, chunks) != 1 {
            multiplier += 2;
        }
        Self {
            chunk_pages,
            chunks,
            multiplier: multiplier % chunks.max(1),
            offset: seed % chunks,
        }
    }

    /// Maps a pre-placement page address to its final logical address.
    ///
    /// The chunk permutation is a bijection of the *padded* domain
    /// `[0, chunks*chunk_pages)`; when the logical space is not a multiple
    /// of the chunk size, cycle-walking (re-applying the permutation until
    /// the result lands in range) restores a bijection of the valid
    /// subdomain.
    fn place(&self, pre: u64, logical_pages: u64) -> u64 {
        debug_assert!(pre < logical_pages);
        let mut at = pre;
        loop {
            let chunk = at / self.chunk_pages;
            let within = at % self.chunk_pages;
            let scattered = (chunk
                .wrapping_mul(self.multiplier)
                .wrapping_add(self.offset))
                % self.chunks;
            at = scattered * self.chunk_pages + within;
            if at < logical_pages {
                return at;
            }
        }
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Deterministic, infinite iterator of [`TraceEvent`]s following a
/// [`WorkloadSpec`].
///
/// Writes arrive as bursts of geometrically distributed length; burst
/// arrivals and reads are Poisson processes. Events are emitted in
/// non-decreasing timestamp order. See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    spec: WorkloadSpec,
    rng: SplitMix64,
    zipf: Zipf,
    scatter: ChunkScatter,
    next_burst_at: HostNanos,
    next_read_at: HostNanos,
    /// Remaining pages of the burst in progress: (next_time, next_pre_addr,
    /// pages_left).
    burst: Option<(HostNanos, u64, u32)>,
}

impl SyntheticTrace {
    /// Starts a trace at host time zero.
    ///
    /// # Panics
    ///
    /// Panics if the spec is inconsistent (zero space, non-positive rates,
    /// probabilities out of range).
    pub fn new(spec: WorkloadSpec) -> Self {
        spec.validate();
        let mut rng = SplitMix64::new(spec.seed);
        let zipf = Zipf::new(spec.hot_pages(), spec.zipf_exponent);
        let scatter = ChunkScatter::new(
            spec.logical_pages,
            spec.chunk_pages,
            spec.placement_seed ^ 0x5EED_CAFE,
        );
        let burst_rate = spec.writes_per_sec / spec.mean_burst_pages;
        let first_burst = exp_interval(&mut rng, burst_rate);
        let first_read = if spec.reads_per_sec > 0.0 {
            exp_interval(&mut rng, spec.reads_per_sec)
        } else {
            u64::MAX
        };
        Self {
            spec,
            rng,
            zipf,
            scatter,
            next_burst_at: first_burst,
            next_read_at: first_read,
            burst: None,
        }
    }

    /// The spec this trace was built from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Diurnal activity multiplier at host time `t` (mean 1.0 over a day).
    fn activity(&self, at_ns: HostNanos) -> f64 {
        if !self.spec.diurnal {
            return 1.0;
        }
        const DAY_NS: f64 = 86_400.0 * NANOS_PER_SEC as f64;
        let phase = (at_ns as f64 % DAY_NS) / DAY_NS * std::f64::consts::TAU;
        // 0.2× at night, 1.8× mid-day; mean exactly 1.
        1.0 - 0.8 * phase.cos()
    }

    fn pick_burst_start(&mut self) -> u64 {
        // Writes only target the updatable region [0, updatable): hot pages
        // in [0, hot) with Zipf skew, warm pages uniformly in [hot,
        // updatable). The frozen tail of the footprint is written only by
        // the fill sequence.
        let updatable = self.spec.updatable_pages();
        let hot_pages = self.spec.hot_pages();
        if self.rng.chance(self.spec.hot_write_prob) || hot_pages >= updatable {
            let u = self.rng.next_f64();
            self.zipf.sample(u)
        } else {
            self.rng.range_u64(hot_pages..updatable)
        }
    }

    fn start_burst(&mut self, at_ns: HostNanos) -> TraceEvent {
        let pre = self.pick_burst_start();
        // Geometric burst length with the configured mean.
        let p = 1.0 / self.spec.mean_burst_pages;
        let mut len = 1u32;
        while self.rng.next_f64() > p && len < 1024 {
            len += 1;
        }
        let event = self.emit_write(at_ns, pre);
        if len > 1 {
            self.burst = Some((at_ns + INTRA_BURST_GAP_NS, pre + 1, len - 1));
        }
        event
    }

    fn emit_write(&mut self, at_ns: HostNanos, pre: u64) -> TraceEvent {
        let updatable = self.spec.updatable_pages();
        let lba = self.scatter.place(pre % updatable, self.spec.logical_pages);
        TraceEvent::write(at_ns, lba)
    }
}

/// Exponential inter-arrival time in nanoseconds for a `rate`/s process.
fn exp_interval(rng: &mut SplitMix64, rate: f64) -> u64 {
    debug_assert!(rate > 0.0);
    let u: f64 = rng.next_f64().max(f64::MIN_POSITIVE);
    let secs = -u.ln() / rate;
    (secs * NANOS_PER_SEC as f64) as u64
}

/// The one-time device fill produced by [`WorkloadSpec::fill_events`].
#[derive(Debug, Clone)]
pub struct FillSequence {
    scatter: ChunkScatter,
    logical_pages: u64,
    footprint: u64,
    next: u64,
}

impl Iterator for FillSequence {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        if self.next >= self.footprint {
            return None;
        }
        let pre = self.next;
        self.next += 1;
        let lba = self.scatter.place(pre, self.logical_pages);
        // Dense spacing keeps timestamps strictly increasing while adding
        // negligible host time (1 µs per page).
        Some(TraceEvent::write(pre * 1_000, lba))
    }
}

impl ExactSizeIterator for FillSequence {
    fn len(&self) -> usize {
        (self.footprint - self.next) as usize
    }
}

impl Iterator for SyntheticTrace {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        // Three sources — the burst in progress, the next burst arrival and
        // the next read — merged by timestamp so reads landing mid-burst
        // interleave correctly.
        let burst_at = self.burst.map_or(u64::MAX, |(at, _, _)| at);
        if burst_at <= self.next_burst_at && burst_at <= self.next_read_at {
            let (at, pre, left) = self.burst.take().expect("burst_at came from Some");
            let event = self.emit_write(at, pre);
            if left > 1 {
                self.burst = Some((at + INTRA_BURST_GAP_NS, pre + 1, left - 1));
            }
            return Some(event);
        }

        if self.next_burst_at <= self.next_read_at {
            let at = self.next_burst_at;
            let activity = self.activity(at);
            let burst_rate = self.spec.writes_per_sec / self.spec.mean_burst_pages * activity;
            self.next_burst_at = at + exp_interval(&mut self.rng, burst_rate);
            Some(self.start_burst(at))
        } else {
            let at = self.next_read_at;
            let activity = self.activity(at);
            self.next_read_at =
                at + exp_interval(&mut self.rng, self.spec.reads_per_sec * activity);
            let footprint = self.spec.footprint_pages();
            let pre = self.rng.range_u64(0..footprint);
            let lba = self.scatter.place(pre, self.spec.logical_pages);
            Some(TraceEvent::read(at, lba))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Op;

    fn sample_spec() -> WorkloadSpec {
        WorkloadSpec::paper(16_384).with_seed(7)
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a: Vec<_> = SyntheticTrace::new(sample_spec()).take(5000).collect();
        let b: Vec<_> = SyntheticTrace::new(sample_spec()).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = SyntheticTrace::new(sample_spec()).take(100).collect();
        let b: Vec<_> = SyntheticTrace::new(sample_spec().with_seed(8))
            .take(100)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn timestamps_are_monotone() {
        let events: Vec<_> = SyntheticTrace::new(sample_spec()).take(20_000).collect();
        assert!(events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    }

    #[test]
    fn lbas_stay_in_logical_space() {
        let spec = sample_spec();
        let events: Vec<_> = SyntheticTrace::new(spec.clone()).take(20_000).collect();
        assert!(events.iter().all(|e| e.lba < spec.logical_pages));
    }

    #[test]
    fn written_footprint_matches_fraction() {
        // Fill + steady state together touch exactly the footprint: the
        // fill writes every footprint page once, the steady trace stays
        // inside the updatable part of it.
        let spec = sample_spec();
        let mut written = std::collections::HashSet::new();
        for e in spec.fill_events() {
            written.insert(e.lba);
        }
        assert_eq!(written.len() as u64, spec.footprint_pages());
        let fraction = written.len() as f64 / spec.logical_pages as f64;
        assert!((fraction - spec.written_fraction).abs() < 0.01);

        let fill_set = written.clone();
        for e in SyntheticTrace::new(spec.clone()).take(200_000) {
            if e.op == Op::Write {
                assert!(
                    fill_set.contains(&e.lba),
                    "steady write outside the filled footprint: {}",
                    e.lba
                );
                written.insert(e.lba);
            }
        }
        assert_eq!(written.len() as u64, spec.footprint_pages());
    }

    #[test]
    fn frozen_pages_never_updated_by_steady_trace() {
        let spec = sample_spec();
        // Frozen pre-addresses occupy [updatable, footprint); map them.
        let frozen_lbas: std::collections::HashSet<u64> = spec
            .fill_events()
            .skip(spec.updatable_pages() as usize)
            .map(|e| e.lba)
            .collect();
        assert_eq!(frozen_lbas.len() as u64, spec.frozen_pages());
        for e in SyntheticTrace::new(spec.clone()).take(200_000) {
            if e.op == Op::Write {
                assert!(
                    !frozen_lbas.contains(&e.lba),
                    "frozen lba {} updated",
                    e.lba
                );
            }
        }
    }

    #[test]
    fn fill_is_deterministic_and_sized() {
        let spec = sample_spec();
        let a: Vec<_> = spec.fill_events().collect();
        let b: Vec<_> = spec.fill_events().collect();
        assert_eq!(a, b);
        assert_eq!(spec.fill_events().len() as u64, spec.footprint_pages());
        assert!(a.windows(2).all(|w| w[0].at_ns < w[1].at_ns));
        assert!(a.iter().all(|e| e.op == Op::Write));
    }

    #[test]
    fn rates_approximate_spec() {
        let spec = sample_spec();
        let events: Vec<_> = SyntheticTrace::new(spec.clone()).take(200_000).collect();
        let span_s = events.last().unwrap().at_ns as f64 / NANOS_PER_SEC as f64;
        let writes = events.iter().filter(|e| e.op == Op::Write).count() as f64;
        let reads = events.iter().filter(|e| e.op == Op::Read).count() as f64;
        let w_rate = writes / span_s;
        let r_rate = reads / span_s;
        assert!(
            (w_rate - spec.writes_per_sec).abs() / spec.writes_per_sec < 0.1,
            "write rate {w_rate:.2}/s vs spec {}",
            spec.writes_per_sec
        );
        assert!(
            (r_rate - spec.reads_per_sec).abs() / spec.reads_per_sec < 0.1,
            "read rate {r_rate:.2}/s vs spec {}",
            spec.reads_per_sec
        );
    }

    #[test]
    fn hot_set_receives_most_writes() {
        let spec = sample_spec();
        // Count how concentrated writes are: the hottest pages should take
        // the configured share of traffic.
        let mut counts = std::collections::HashMap::new();
        let mut writes = 0u64;
        for e in SyntheticTrace::new(spec.clone()).take(300_000) {
            if e.op == Op::Write {
                *counts.entry(e.lba).or_insert(0u64) += 1;
                writes += 1;
            }
        }
        let mut freq: Vec<u64> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let hot_take: u64 = freq.iter().take(spec.hot_pages() as usize).sum();
        let share = hot_take as f64 / writes as f64;
        assert!(
            share > 0.8,
            "hottest {} pages take {share:.2} of writes, expected ≳ 0.9",
            spec.hot_pages()
        );
    }

    #[test]
    fn bursts_are_sequential() {
        let spec = sample_spec();
        let events: Vec<_> = SyntheticTrace::new(spec).take(50_000).collect();
        let mut sequential_pairs = 0usize;
        let mut write_pairs = 0usize;
        for w in events.windows(2) {
            if w[0].op == Op::Write && w[1].op == Op::Write {
                write_pairs += 1;
                if w[1].lba == w[0].lba + 1 {
                    sequential_pairs += 1;
                }
            }
        }
        assert!(
            sequential_pairs as f64 / write_pairs as f64 > 0.5,
            "bursty writes should often be sequential: {sequential_pairs}/{write_pairs}"
        );
    }

    #[test]
    fn diurnal_envelope_modulates_but_preserves_mean() {
        let spec = sample_spec().with_diurnal(true);
        let trace = SyntheticTrace::new(spec);
        let events: Vec<_> = trace.take(100_000).collect();
        assert!(events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    }

    #[test]
    fn scatter_is_a_bijection_per_chunk() {
        for chunk in [1u64, 8, 16, 64] {
            let n = chunk * 100;
            let scatter = ChunkScatter::new(n, chunk, 3);
            let mut seen = std::collections::HashSet::new();
            for pre in 0..n {
                assert!(seen.insert(scatter.place(pre, n)), "chunk {chunk}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "write rate")]
    fn zero_write_rate_rejected() {
        let mut spec = sample_spec();
        spec.writes_per_sec = 0.0;
        SyntheticTrace::new(spec);
    }
}
