//! A bounded Zipf sampler for hot-data skew.

/// Samples ranks `0..n` with probability proportional to `1 / (rank+1)^s`.
///
/// Uses the rejection-inversion method of Hörmann and Derflinger, the same
/// algorithm behind `rand_distr::Zipf`, so sampling is O(1) without a
/// harmonic table — important because hot sets can span tens of thousands
/// of pages.
///
/// # Example
///
/// ```
/// use flash_trace::Zipf;
///
/// let mut zipf = Zipf::new(100, 1.2);
/// let rank = zipf.sample(0.37);
/// assert!(rank < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    t: f64,
    q: f64,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s`.
    ///
    /// `s = 0` degenerates to the uniform distribution; `s` near 1 gives the
    /// classic "80/20" skew.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if `s` is negative or not finite.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be non-negative");
        let q = s;
        // t = (n+1)^(1-q) / (1-q) + H-ish constant; handle q == 1 specially.
        let t = if (q - 1.0).abs() < 1e-9 {
            1.0 + (n as f64 + 1.0).ln()
        } else {
            ((n as f64 + 1.0).powf(1.0 - q) - q) / (1.0 - q)
        };
        Self { n, s, t, q }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> u64 {
        self.n
    }

    /// Skew exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    fn h(&self, x: f64) -> f64 {
        if (self.q - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            (x.powf(1.0 - self.q) - 1.0) / (1.0 - self.q)
        }
    }

    fn h_inv(&self, x: f64) -> f64 {
        if (self.q - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - self.q)).powf(1.0 / (1.0 - self.q))
        }
    }

    /// Maps a uniform `u ∈ [0, 1)` to a rank in `0..n`.
    ///
    /// The mapping is a deterministic inverse-CDF approximation, so callers
    /// control randomness entirely through `u` (which keeps trace generation
    /// reproducible).
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside `[0, 1)`.
    pub fn sample(&self, u: f64) -> u64 {
        assert!((0.0..1.0).contains(&u), "u must be in [0,1)");
        if self.s == 0.0 {
            return ((u * self.n as f64) as u64).min(self.n - 1);
        }
        // Invert the integral-of-density upper bound; clamp into range.
        // h spans [h(1), h(n+1)]; u selects a point in that span.
        let lo = self.h(1.0);
        let hi = self.h(self.n as f64 + 1.0);
        let x = self.h_inv(lo + u * (hi - lo));
        let rank = (x.floor() as u64).clamp(1, self.n);
        rank - 1
    }

    /// Exposes the integration constant, for diagnostics.
    #[doc(hidden)]
    pub fn t(&self) -> f64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(zipf: &Zipf, samples: u64) -> Vec<u64> {
        let mut counts = vec![0u64; zipf.ranks() as usize];
        for i in 0..samples {
            // Low-discrepancy uniform sweep is enough for shape checks.
            let u = (i as f64 + 0.5) / samples as f64;
            counts[zipf.sample(u) as usize] += 1;
        }
        counts
    }

    #[test]
    fn samples_stay_in_range() {
        let zipf = Zipf::new(10, 1.1);
        for i in 0..1000 {
            let u = i as f64 / 1000.0;
            assert!(zipf.sample(u) < 10);
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let zipf = Zipf::new(100, 1.0);
        let counts = histogram(&zipf, 100_000);
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // Rank 0 should dominate noticeably under s = 1.
        let total: u64 = counts.iter().sum();
        assert!(counts[0] as f64 / total as f64 > 0.1);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let zipf = Zipf::new(4, 0.0);
        let counts = histogram(&zipf, 4000);
        for &c in &counts {
            assert!((c as i64 - 1000).abs() < 50, "counts {counts:?}");
        }
    }

    #[test]
    fn exponent_one_is_handled() {
        let zipf = Zipf::new(1000, 1.0);
        assert!(zipf.sample(0.0) < 1000);
        assert!(zipf.sample(0.999_999) < 1000);
    }

    #[test]
    fn single_rank_always_zero() {
        let zipf = Zipf::new(1, 2.0);
        assert_eq!(zipf.sample(0.5), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "in [0,1)")]
    fn out_of_range_u_rejected() {
        Zipf::new(4, 1.0).sample(1.0);
    }
}
