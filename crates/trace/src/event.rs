//! Trace events and host time.

use std::fmt;

/// Host wall-clock time in nanoseconds since the start of the trace.
pub type HostNanos = u64;

/// Nanoseconds per second, for rate conversions.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// Request direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Host read of a logical page.
    Read,
    /// Host write (update) of a logical page.
    Write,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read => f.write_str("R"),
            Op::Write => f.write_str("W"),
        }
    }
}

/// One host request: a read or write of `len` consecutive logical pages
/// starting at `lba`, issued at host time `at_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Host time of the request.
    pub at_ns: HostNanos,
    /// Direction.
    pub op: Op,
    /// First logical page touched.
    pub lba: u64,
    /// Number of consecutive pages touched (≥ 1).
    pub len: u32,
}

impl TraceEvent {
    /// A single-page write at `at_ns`.
    pub fn write(at_ns: HostNanos, lba: u64) -> Self {
        Self {
            at_ns,
            op: Op::Write,
            lba,
            len: 1,
        }
    }

    /// A single-page read at `at_ns`.
    pub fn read(at_ns: HostNanos, lba: u64) -> Self {
        Self {
            at_ns,
            op: Op::Read,
            lba,
            len: 1,
        }
    }

    /// A write of `len` consecutive pages starting at `lba`.
    pub fn write_span(at_ns: HostNanos, lba: u64, len: u32) -> Self {
        Self {
            at_ns,
            op: Op::Write,
            lba,
            len,
        }
    }

    /// A read of `len` consecutive pages starting at `lba`.
    pub fn read_span(at_ns: HostNanos, lba: u64, len: u32) -> Self {
        Self {
            at_ns,
            op: Op::Read,
            lba,
            len,
        }
    }

    /// Widens this event to its enclosing `span`-page aligned window,
    /// clamped to `logical_pages` — replaying a page-granular trace as the
    /// `span`-page host requests (e.g. 4 KiB sectors over 512 B pages) that
    /// a multi-channel array overlaps across its lanes. The touched region
    /// contains the original page; alignment keeps the mapping
    /// deterministic and non-overlapping for a fixed `span`.
    ///
    /// # Panics
    ///
    /// Panics when `span` is zero.
    pub fn widen(self, span: u32, logical_pages: u64) -> Self {
        assert!(span > 0, "span must be positive");
        let start = self.lba - self.lba % u64::from(span);
        let len = u64::from(span)
            .min(logical_pages.saturating_sub(start))
            .max(1) as u32;
        Self {
            lba: start,
            len,
            ..self
        }
    }

    /// Iterates over every logical page this event touches.
    pub fn pages(&self) -> impl Iterator<Item = u64> {
        self.lba..self.lba + u64::from(self.len)
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} {}", self.at_ns, self.op, self.lba, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let w = TraceEvent::write(10, 5);
        assert_eq!(w.op, Op::Write);
        assert_eq!((w.at_ns, w.lba, w.len), (10, 5, 1));
        let r = TraceEvent::read(20, 6);
        assert_eq!(r.op, Op::Read);
    }

    #[test]
    fn pages_covers_len() {
        let e = TraceEvent {
            at_ns: 0,
            op: Op::Write,
            lba: 10,
            len: 3,
        };
        assert_eq!(e.pages().collect::<Vec<_>>(), vec![10, 11, 12]);
    }

    #[test]
    fn display_round_trips_visually() {
        let e = TraceEvent::write(42, 7);
        assert_eq!(e.to_string(), "42 W 7 1");
    }

    #[test]
    fn span_constructors_set_len() {
        let w = TraceEvent::write_span(5, 8, 4);
        assert_eq!((w.op, w.lba, w.len), (Op::Write, 8, 4));
        let r = TraceEvent::read_span(5, 8, 4);
        assert_eq!(r.op, Op::Read);
    }

    #[test]
    fn widen_aligns_and_clamps() {
        let e = TraceEvent::write(0, 13).widen(8, 100);
        assert_eq!((e.lba, e.len), (8, 8));
        assert!(e.pages().any(|p| p == 13), "window contains the original");
        // Clamped at the end of the logical space.
        let tail = TraceEvent::write(0, 98).widen(8, 100);
        assert_eq!((tail.lba, tail.len), (96, 4));
        // Already aligned single-page space degenerates to len 1.
        let tiny = TraceEvent::read(0, 0).widen(8, 1);
        assert_eq!((tiny.lba, tiny.len), (0, 1));
    }

    #[test]
    #[should_panic(expected = "span must be positive")]
    fn widen_rejects_zero_span() {
        let _ = TraceEvent::write(0, 0).widen(0, 10);
    }
}
