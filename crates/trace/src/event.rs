//! Trace events and host time.

use std::fmt;

/// Host wall-clock time in nanoseconds since the start of the trace.
pub type HostNanos = u64;

/// Nanoseconds per second, for rate conversions.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// Request direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Host read of a logical page.
    Read,
    /// Host write (update) of a logical page.
    Write,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read => f.write_str("R"),
            Op::Write => f.write_str("W"),
        }
    }
}

/// One host request: a read or write of `len` consecutive logical pages
/// starting at `lba`, issued at host time `at_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Host time of the request.
    pub at_ns: HostNanos,
    /// Direction.
    pub op: Op,
    /// First logical page touched.
    pub lba: u64,
    /// Number of consecutive pages touched (≥ 1).
    pub len: u32,
}

impl TraceEvent {
    /// A single-page write at `at_ns`.
    pub fn write(at_ns: HostNanos, lba: u64) -> Self {
        Self {
            at_ns,
            op: Op::Write,
            lba,
            len: 1,
        }
    }

    /// A single-page read at `at_ns`.
    pub fn read(at_ns: HostNanos, lba: u64) -> Self {
        Self {
            at_ns,
            op: Op::Read,
            lba,
            len: 1,
        }
    }

    /// Iterates over every logical page this event touches.
    pub fn pages(&self) -> impl Iterator<Item = u64> {
        self.lba..self.lba + u64::from(self.len)
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} {}", self.at_ns, self.op, self.lba, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let w = TraceEvent::write(10, 5);
        assert_eq!(w.op, Op::Write);
        assert_eq!((w.at_ns, w.lba, w.len), (10, 5, 1));
        let r = TraceEvent::read(20, 6);
        assert_eq!(r.op, Op::Read);
    }

    #[test]
    fn pages_covers_len() {
        let e = TraceEvent {
            at_ns: 0,
            op: Op::Write,
            lba: 10,
            len: 3,
        };
        assert_eq!(e.pages().collect::<Vec<_>>(), vec![10, 11, 12]);
    }

    #[test]
    fn display_round_trips_visually() {
        let e = TraceEvent::write(42, 7);
        assert_eq!(e.to_string(), "42 W 7 1");
    }
}
