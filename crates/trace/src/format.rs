//! A simple line-oriented text format for trace interchange.
//!
//! Each line is `<at_ns> <R|W> <lba> <len>`; blank lines and lines starting
//! with `#` are ignored. The format is intentionally trivial so external
//! traces (e.g. converted DiskMon logs, as the paper used) can be fed to the
//! simulator with a one-line awk script.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::event::{Op, TraceEvent};

/// Error from [`parse_trace`], pointing at the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl Error for ParseTraceError {}

/// Parses a text trace.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on the first malformed line (wrong field
/// count, unknown op, unparsable number, zero length).
///
/// # Example
///
/// ```
/// use flash_trace::{parse_trace, Op};
///
/// # fn main() -> Result<(), flash_trace::ParseTraceError> {
/// let events = parse_trace("# a comment\n0 W 7 1\n1000 R 7 2\n")?;
/// assert_eq!(events.len(), 2);
/// assert_eq!(events[1].op, Op::Read);
/// assert_eq!(events[1].len, 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_trace(text: &str) -> Result<Vec<TraceEvent>, ParseTraceError> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(ParseTraceError {
                line: line_no,
                reason: format!("expected 4 fields, found {}", fields.len()),
            });
        }
        let at_ns = fields[0].parse::<u64>().map_err(|e| ParseTraceError {
            line: line_no,
            reason: format!("bad timestamp: {e}"),
        })?;
        let op = match fields[1] {
            "R" | "r" => Op::Read,
            "W" | "w" => Op::Write,
            other => {
                return Err(ParseTraceError {
                    line: line_no,
                    reason: format!("unknown op {other:?} (expected R or W)"),
                })
            }
        };
        let lba = fields[2].parse::<u64>().map_err(|e| ParseTraceError {
            line: line_no,
            reason: format!("bad lba: {e}"),
        })?;
        let len = fields[3].parse::<u32>().map_err(|e| ParseTraceError {
            line: line_no,
            reason: format!("bad length: {e}"),
        })?;
        if len == 0 {
            return Err(ParseTraceError {
                line: line_no,
                reason: "length must be at least 1".to_owned(),
            });
        }
        events.push(TraceEvent {
            at_ns,
            op,
            lba,
            len,
        });
    }
    Ok(events)
}

/// Renders events in the text format accepted by [`parse_trace`].
pub fn write_trace<'a, I: IntoIterator<Item = &'a TraceEvent>>(events: I) -> String {
    let mut out = String::new();
    for e in events {
        let _ = writeln!(out, "{e}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let events = vec![
            TraceEvent::write(0, 3),
            TraceEvent::read(1500, 9),
            TraceEvent {
                at_ns: 2000,
                op: Op::Write,
                lba: 100,
                len: 8,
            },
        ];
        let text = write_trace(&events);
        assert_eq!(parse_trace(&text).unwrap(), events);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let events = parse_trace("# header\n\n  \n0 W 1 1\n").unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn lowercase_ops_accepted() {
        let events = parse_trace("0 w 1 1\n1 r 2 1\n").unwrap();
        assert_eq!(events[0].op, Op::Write);
        assert_eq!(events[1].op, Op::Read);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_trace("0 W 1 1\nbogus\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));

        let err = parse_trace("0 X 1 1\n").unwrap_err();
        assert!(err.reason.contains("unknown op"));

        let err = parse_trace("zzz W 1 1\n").unwrap_err();
        assert!(err.reason.contains("timestamp"));

        let err = parse_trace("0 W 1 0\n").unwrap_err();
        assert!(err.reason.contains("at least 1"));
    }
}
