//! Summary statistics of a trace, for calibration checks.

use std::collections::HashSet;
use std::fmt;

use crate::event::{Op, TraceEvent, NANOS_PER_SEC};

/// Aggregate statistics over a trace prefix — the quantities the paper
/// reports for its collected trace (fraction of LBAs written, average
/// read/write rates).
///
/// # Example
///
/// ```
/// use flash_trace::{SyntheticTrace, TraceStats, WorkloadSpec};
///
/// let spec = WorkloadSpec::paper(8192).with_seed(2);
/// let stats = TraceStats::measure(SyntheticTrace::new(spec).take(50_000), 8192);
/// assert!(stats.writes > 0 && stats.reads > 0);
/// assert!(stats.written_fraction() < 0.3662 + 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Write events observed.
    pub writes: u64,
    /// Read events observed.
    pub reads: u64,
    /// Pages written (sum of lengths).
    pub pages_written: u64,
    /// Distinct LBAs written at least once.
    pub distinct_lbas_written: u64,
    /// Logical space size the trace addresses.
    pub logical_pages: u64,
    /// Host-time span covered, in nanoseconds.
    pub span_ns: u64,
}

impl TraceStats {
    /// Measures statistics over `events`.
    pub fn measure<I: IntoIterator<Item = TraceEvent>>(events: I, logical_pages: u64) -> Self {
        let mut writes = 0;
        let mut reads = 0;
        let mut pages_written = 0;
        let mut span_ns = 0;
        let mut written = HashSet::new();
        for e in events {
            span_ns = span_ns.max(e.at_ns);
            match e.op {
                Op::Write => {
                    writes += 1;
                    pages_written += u64::from(e.len);
                    written.extend(e.pages());
                }
                Op::Read => reads += 1,
            }
        }
        Self {
            writes,
            reads,
            pages_written,
            distinct_lbas_written: written.len() as u64,
            logical_pages,
            span_ns,
        }
    }

    /// Fraction of the logical space ever written (paper: 36.62 %).
    pub fn written_fraction(&self) -> f64 {
        if self.logical_pages == 0 {
            0.0
        } else {
            self.distinct_lbas_written as f64 / self.logical_pages as f64
        }
    }

    /// Average write events per second.
    pub fn writes_per_sec(&self) -> f64 {
        if self.span_ns == 0 {
            0.0
        } else {
            self.writes as f64 * NANOS_PER_SEC as f64 / self.span_ns as f64
        }
    }

    /// Average read events per second.
    pub fn reads_per_sec(&self) -> f64 {
        if self.span_ns == 0 {
            0.0
        } else {
            self.reads as f64 * NANOS_PER_SEC as f64 / self.span_ns as f64
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} writes ({:.2}/s), {} reads ({:.2}/s), {:.2}% of LBAs written",
            self.writes,
            self.writes_per_sec(),
            self.reads,
            self.reads_per_sec(),
            self.written_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_ops_and_footprint() {
        let events = vec![
            TraceEvent::write(0, 0),
            TraceEvent::write(NANOS_PER_SEC, 0),
            TraceEvent::write(2 * NANOS_PER_SEC, 1),
            TraceEvent::read(3 * NANOS_PER_SEC, 5),
        ];
        let stats = TraceStats::measure(events, 10);
        assert_eq!(stats.writes, 3);
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.distinct_lbas_written, 2);
        assert_eq!(stats.written_fraction(), 0.2);
        assert_eq!(stats.writes_per_sec(), 1.0);
    }

    #[test]
    fn multi_page_events_expand_footprint() {
        let events = vec![TraceEvent {
            at_ns: NANOS_PER_SEC,
            op: Op::Write,
            lba: 4,
            len: 3,
        }];
        let stats = TraceStats::measure(events, 100);
        assert_eq!(stats.distinct_lbas_written, 3);
        assert_eq!(stats.pages_written, 3);
    }

    #[test]
    fn empty_trace_is_zeroes() {
        let stats = TraceStats::measure(Vec::new(), 100);
        assert_eq!(stats.writes_per_sec(), 0.0);
        assert_eq!(stats.written_fraction(), 0.0);
    }

    #[test]
    fn display_mentions_rates() {
        let events = vec![TraceEvent::write(NANOS_PER_SEC, 0)];
        let text = TraceStats::measure(events, 10).to_string();
        assert!(text.contains("writes"));
        assert!(text.contains("% of LBAs"));
    }
}
