//! # `flash-trace` — workload model and trace generation
//!
//! The paper evaluates its wear leveler on a one-month disk trace collected
//! from a mobile PC (web surfing, email, movie playback, document editing):
//! 36.62 % of the logical space was ever written, with 1.82 writes/s and
//! 1.97 reads/s on average, and hot data written in bursts. That trace is
//! not public, so this crate provides a **calibrated synthetic equivalent**:
//! every published summary statistic is an explicit knob of
//! [`WorkloadSpec`], and the generated stream is deterministic in the seed.
//!
//! The paper also derives a "virtually unlimited" trace by replaying random
//! 10-minute segments of the base trace forever; [`SegmentResampler`]
//! reproduces that construction.
//!
//! ## Example
//!
//! ```
//! use flash_trace::{Op, SyntheticTrace, WorkloadSpec};
//!
//! let spec = WorkloadSpec::paper(65_536).with_seed(1);
//! let trace = SyntheticTrace::new(spec.clone());
//! let events: Vec<_> = trace.take(1000).collect();
//! assert!(events.iter().any(|e| e.op == Op::Write));
//! assert!(events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
//! assert!(events.iter().all(|e| e.lba < spec.logical_pages));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod fat;
mod format;
mod resample;
mod sector;
mod stats;
mod synthetic;
mod zipf;

pub use event::{HostNanos, Op, TraceEvent, NANOS_PER_SEC};
pub use format::{parse_trace, write_trace, ParseTraceError};
pub use resample::SegmentResampler;
pub use sector::{MapTrace, SectorMapper};
pub use stats::TraceStats;
pub use synthetic::{FillSequence, SyntheticTrace, WorkloadSpec};
pub use zipf::Zipf;
