//! Property tests of the multi-hash hot-data identifier.

use std::collections::HashMap;

use proptest::prelude::*;

use hotid::{HotDataConfig, MultiHashIdentifier};

fn config(counters_pow: u32, hashes: u32, threshold: u8) -> HotDataConfig {
    HotDataConfig {
        counters: 1 << counters_pow,
        hash_count: hashes,
        hot_threshold: threshold,
        decay_interval: 0,
        seed: 7,
    }
}

proptest! {
    /// The counting-Bloom bound: the estimate never *under*-counts (up to
    /// counter saturation at 15).
    #[test]
    fn estimate_never_undercounts(
        writes in prop::collection::vec(0u64..500, 0..400),
        counters_pow in 8u32..13,
        hashes in 1u32..4,
    ) {
        let mut id = MultiHashIdentifier::new(config(counters_pow, hashes, 4)).unwrap();
        let mut truth: HashMap<u64, u32> = HashMap::new();
        for &lba in &writes {
            id.record_write(lba);
            *truth.entry(lba).or_insert(0) += 1;
        }
        for (lba, count) in truth {
            let estimate = u32::from(id.estimate(lba));
            prop_assert!(
                estimate >= count.min(15),
                "estimate {estimate} < true count {count} for lba {lba}"
            );
        }
    }

    /// Anything written at least `threshold` times is classified hot.
    #[test]
    fn true_hot_data_is_never_missed(
        hot_lbas in prop::collection::hash_set(0u64..100, 1..8),
        threshold in 1u8..8,
    ) {
        let mut id = MultiHashIdentifier::new(config(13, 2, threshold)).unwrap();
        for &lba in &hot_lbas {
            for _ in 0..threshold {
                id.record_write(lba);
            }
        }
        for &lba in &hot_lbas {
            prop_assert!(id.is_hot(lba), "lba {lba} written {threshold}x must be hot");
        }
    }

    /// Decay is monotone: no LBA's estimate grows across a decay pass.
    #[test]
    fn decay_is_monotone(writes in prop::collection::vec(0u64..200, 0..300)) {
        let mut id = MultiHashIdentifier::new(config(10, 2, 4)).unwrap();
        for &lba in &writes {
            id.record_write(lba);
        }
        let before: Vec<u8> = (0..200).map(|lba| id.estimate(lba)).collect();
        id.decay();
        for (lba, &b) in before.iter().enumerate() {
            let after = id.estimate(lba as u64);
            prop_assert!(after <= b, "estimate grew across decay at lba {lba}");
            prop_assert_eq!(after, b / 2, "decay must halve (lba {})", lba);
        }
    }

    /// Deterministic: the same write sequence produces identical
    /// classification.
    #[test]
    fn deterministic(writes in prop::collection::vec(0u64..300, 0..200)) {
        let run = || {
            let mut id = MultiHashIdentifier::new(HotDataConfig::default()).unwrap();
            for &lba in &writes {
                id.record_write(lba);
            }
            (0..300u64).map(|lba| id.is_hot(lba)).collect::<Vec<bool>>()
        };
        prop_assert_eq!(run(), run());
    }
}
