//! # `hotid` — on-line hot-data identification
//!
//! The wear-leveling paper leans on the notion of *hot* (frequently
//! updated) versus *cold* data, citing the hot-data identifier of Hsieh,
//! Chang and Kuo (ACM SAC 2005) as the practical way to tell them apart
//! with firmware-grade memory budgets. This crate implements that design:
//! a **multi-hash counting filter** —
//!
//! - a table of `M` small saturating counters (4 bits each, packed two per
//!   byte);
//! - each write hashes its LBA with `K` independent hash functions and
//!   increments the `K` counters;
//! - an LBA is *hot* when **all** `K` of its counters meet the threshold
//!   `H` (the minimum over the hash positions approximates the true write
//!   count, exactly like a counting Bloom filter);
//! - every `decay_interval` writes, all counters are halved (exponential
//!   aging), so data that stops being written cools off.
//!
//! The identifier is used by the `ftl` crate's hot/cold data separation
//! (steering hot and cold writes to different active blocks, which lowers
//! the garbage collector's live-copy cost `L`), and is useful on its own
//! for any flash-management policy that needs cheap hotness estimates.
//!
//! ## Example
//!
//! ```
//! use hotid::{HotDataConfig, MultiHashIdentifier};
//!
//! # fn main() -> Result<(), hotid::BuildIdentifierError> {
//! let mut hot = MultiHashIdentifier::new(HotDataConfig::default())?;
//! for _ in 0..8 {
//!     hot.record_write(42);
//! }
//! hot.record_write(1000);
//! assert!(hot.is_hot(42));
//! assert!(!hot.is_hot(1000));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

/// Configuration of the multi-hash identifier.
///
/// The defaults follow the cited paper's evaluation: a 4 KiB counter table
/// (8192 4-bit counters), two hash functions, hotness threshold 4, decay
/// every 5117 writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotDataConfig {
    /// Number of 4-bit counters (must be a power of two).
    pub counters: usize,
    /// Independent hash functions per LBA (1–8).
    pub hash_count: u32,
    /// Write count at which data is considered hot (1–15).
    pub hot_threshold: u8,
    /// Writes between exponential-decay passes (0 disables decay).
    pub decay_interval: u64,
    /// Seed for the hash family.
    pub seed: u64,
}

impl Default for HotDataConfig {
    fn default() -> Self {
        Self {
            counters: 8192,
            hash_count: 2,
            hot_threshold: 4,
            decay_interval: 5117,
            seed: 0,
        }
    }
}

impl HotDataConfig {
    /// RAM needed for the counter table, in bytes.
    pub fn ram_bytes(&self) -> usize {
        self.counters.div_ceil(2)
    }
}

/// Errors from building a [`MultiHashIdentifier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildIdentifierError {
    /// `counters` must be a non-zero power of two.
    BadTableSize {
        /// The offending size.
        counters: usize,
    },
    /// `hash_count` must be between 1 and 8.
    BadHashCount {
        /// The offending count.
        hash_count: u32,
    },
    /// `hot_threshold` must be between 1 and 15 (4-bit counters).
    BadThreshold {
        /// The offending threshold.
        hot_threshold: u8,
    },
}

impl fmt::Display for BuildIdentifierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildIdentifierError::BadTableSize { counters } => {
                write!(f, "counter table size {counters} is not a power of two")
            }
            BuildIdentifierError::BadHashCount { hash_count } => {
                write!(f, "hash count {hash_count} outside 1..=8")
            }
            BuildIdentifierError::BadThreshold { hot_threshold } => {
                write!(f, "hot threshold {hot_threshold} outside 1..=15")
            }
        }
    }
}

impl Error for BuildIdentifierError {}

/// The multi-hash counting filter.
///
/// See the [crate-level documentation](crate) for the scheme and an
/// example.
#[derive(Debug, Clone)]
pub struct MultiHashIdentifier {
    config: HotDataConfig,
    /// Two 4-bit counters per byte; even index in the low nibble.
    table: Vec<u8>,
    mask: u64,
    hash_seeds: [u64; 8],
    writes: u64,
    decays: u64,
}

impl MultiHashIdentifier {
    /// Builds an identifier.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildIdentifierError`] when the configuration is out of
    /// range.
    pub fn new(config: HotDataConfig) -> Result<Self, BuildIdentifierError> {
        if config.counters == 0 || !config.counters.is_power_of_two() {
            return Err(BuildIdentifierError::BadTableSize {
                counters: config.counters,
            });
        }
        if !(1..=8).contains(&config.hash_count) {
            return Err(BuildIdentifierError::BadHashCount {
                hash_count: config.hash_count,
            });
        }
        if !(1..=15).contains(&config.hot_threshold) {
            return Err(BuildIdentifierError::BadThreshold {
                hot_threshold: config.hot_threshold,
            });
        }
        let mut hash_seeds = [0u64; 8];
        let mut state = config.seed ^ 0x9E37_79B9_7F4A_7C15;
        for seed in &mut hash_seeds {
            // SplitMix64 step to derive independent hash seeds.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *seed = z ^ (z >> 31);
        }
        Ok(Self {
            table: vec![0; config.counters.div_ceil(2)],
            mask: (config.counters - 1) as u64,
            hash_seeds,
            writes: 0,
            decays: 0,
            config,
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> HotDataConfig {
        self.config
    }

    /// RAM held by the counter table.
    pub fn ram_bytes(&self) -> usize {
        self.table.len()
    }

    /// Writes recorded since construction.
    pub fn writes_recorded(&self) -> u64 {
        self.writes
    }

    /// Decay passes performed.
    pub fn decays(&self) -> u64 {
        self.decays
    }

    fn slot(&self, lba: u64, hash: u32) -> usize {
        // xmxmx mixer keyed per hash function.
        let mut x = lba ^ self.hash_seeds[hash as usize];
        x = (x ^ (x >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x = (x ^ (x >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        x ^= x >> 33;
        (x & self.mask) as usize
    }

    fn counter(&self, slot: usize) -> u8 {
        let byte = self.table[slot / 2];
        if slot.is_multiple_of(2) {
            byte & 0x0F
        } else {
            byte >> 4
        }
    }

    fn bump(&mut self, slot: usize) {
        let byte = &mut self.table[slot / 2];
        if slot.is_multiple_of(2) {
            let value = *byte & 0x0F;
            if value < 0x0F {
                *byte = (*byte & 0xF0) | (value + 1);
            }
        } else {
            let value = *byte >> 4;
            if value < 0x0F {
                *byte = (*byte & 0x0F) | ((value + 1) << 4);
            }
        }
    }

    /// Records a write to `lba` and reports whether it now counts as hot.
    pub fn record_write(&mut self, lba: u64) -> bool {
        for hash in 0..self.config.hash_count {
            let slot = self.slot(lba, hash);
            self.bump(slot);
        }
        self.writes += 1;
        if self.config.decay_interval > 0 && self.writes.is_multiple_of(self.config.decay_interval)
        {
            self.decay();
        }
        self.is_hot(lba)
    }

    /// Whether `lba` currently counts as hot: all `K` counters at or above
    /// the threshold.
    pub fn is_hot(&self, lba: u64) -> bool {
        (0..self.config.hash_count)
            .all(|hash| self.counter(self.slot(lba, hash)) >= self.config.hot_threshold)
    }

    /// The estimated write count of `lba` (the minimum over its counters —
    /// an upper bound on the truth, as in any counting Bloom filter).
    pub fn estimate(&self, lba: u64) -> u8 {
        (0..self.config.hash_count)
            .map(|hash| self.counter(self.slot(lba, hash)))
            .min()
            .unwrap_or(0)
    }

    /// Halves every counter (exponential aging). Called automatically every
    /// `decay_interval` writes; callable manually for timer-driven decay.
    pub fn decay(&mut self) {
        for byte in &mut self.table {
            // Halve both nibbles at once: the 0x77 mask strips the bit that
            // would bleed from the high nibble into the low one.
            *byte = (*byte >> 1) & 0x77;
        }
        self.decays += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identifier() -> MultiHashIdentifier {
        MultiHashIdentifier::new(HotDataConfig::default()).unwrap()
    }

    #[test]
    fn defaults_match_cited_design() {
        let config = HotDataConfig::default();
        assert_eq!(config.ram_bytes(), 4096);
        assert_eq!(config.hash_count, 2);
        assert_eq!(config.hot_threshold, 4);
    }

    #[test]
    fn construction_validates() {
        let c = HotDataConfig {
            counters: 1000,
            ..HotDataConfig::default()
        };
        assert!(matches!(
            MultiHashIdentifier::new(c),
            Err(BuildIdentifierError::BadTableSize { .. })
        ));
        let c = HotDataConfig {
            hash_count: 0,
            ..HotDataConfig::default()
        };
        assert!(matches!(
            MultiHashIdentifier::new(c),
            Err(BuildIdentifierError::BadHashCount { .. })
        ));
        let c = HotDataConfig {
            hot_threshold: 16,
            ..HotDataConfig::default()
        };
        assert!(matches!(
            MultiHashIdentifier::new(c),
            Err(BuildIdentifierError::BadThreshold { .. })
        ));
    }

    #[test]
    fn repeated_writes_become_hot() {
        let mut id = identifier();
        assert!(!id.is_hot(7));
        for i in 0..4 {
            let hot = id.record_write(7);
            assert_eq!(hot, i == 3, "hot exactly at the threshold");
        }
        assert!(id.is_hot(7));
        assert!(id.estimate(7) >= 4);
    }

    #[test]
    fn single_writes_stay_cold() {
        let mut id = identifier();
        for lba in 0..1000u64 {
            id.record_write(lba);
        }
        let false_hot = (0..1000u64).filter(|&lba| id.is_hot(lba)).count();
        assert!(
            false_hot < 20,
            "false-positive rate too high: {false_hot}/1000"
        );
    }

    #[test]
    fn counters_saturate_without_wrapping() {
        let mut id = identifier();
        for _ in 0..100 {
            id.record_write(3);
        }
        assert_eq!(id.estimate(3), 15);
        assert!(id.is_hot(3));
    }

    #[test]
    fn decay_cools_idle_data() {
        let config = HotDataConfig {
            decay_interval: 0, // manual decay
            ..HotDataConfig::default()
        };
        let mut id = MultiHashIdentifier::new(config).unwrap();
        for _ in 0..8 {
            id.record_write(9);
        }
        assert!(id.is_hot(9));
        id.decay(); // 8 → 4: still at threshold
        assert!(id.is_hot(9));
        id.decay(); // 4 → 2
        assert!(!id.is_hot(9));
        assert_eq!(id.decays(), 2);
    }

    #[test]
    fn automatic_decay_fires_on_interval() {
        let config = HotDataConfig {
            decay_interval: 10,
            ..HotDataConfig::default()
        };
        let mut id = MultiHashIdentifier::new(config).unwrap();
        for lba in 0..25u64 {
            id.record_write(lba % 5);
        }
        assert_eq!(id.decays(), 2);
    }

    #[test]
    fn estimate_upper_bounds_truth() {
        let mut id = identifier();
        for _ in 0..5 {
            id.record_write(11);
        }
        assert!(id.estimate(11) >= 5);
    }

    #[test]
    fn distinct_seeds_give_distinct_hash_families() {
        let a = HotDataConfig {
            seed: 1,
            ..HotDataConfig::default()
        };
        let b = HotDataConfig {
            seed: 2,
            ..HotDataConfig::default()
        };
        let a = MultiHashIdentifier::new(a).unwrap();
        let b = MultiHashIdentifier::new(b).unwrap();
        let collisions = (0..64u64)
            .filter(|&lba| a.slot(lba, 0) == b.slot(lba, 0))
            .count();
        assert!(collisions < 8, "hash families should differ: {collisions}");
    }

    #[test]
    fn nibble_packing_is_isolated() {
        // Adjacent counters must not bleed into each other.
        let config = HotDataConfig {
            counters: 16,
            hash_count: 1,
            ..HotDataConfig::default()
        };
        let mut id = MultiHashIdentifier::new(config).unwrap();
        // Find two LBAs in adjacent slots of the same byte.
        let mut pairs = None;
        'outer: for a in 0..1000u64 {
            for b in 0..1000u64 {
                if a != b
                    && id.slot(a, 0) / 2 == id.slot(b, 0) / 2
                    && id.slot(a, 0) != id.slot(b, 0)
                {
                    pairs = Some((a, b));
                    break 'outer;
                }
            }
        }
        let (a, b) = pairs.expect("adjacent-slot pair exists in a tiny table");
        for _ in 0..15 {
            id.record_write(a);
        }
        assert_eq!(id.estimate(b), 0, "neighbour counter untouched");
        id.record_write(b);
        assert_eq!(id.estimate(b), 1);
        assert_eq!(id.estimate(a), 15);
    }
}
