//! Property tests of the log-bucketed latency histogram.
//!
//! Pins the three contracts `hist.rs` documents: merging equals recording
//! the concatenation, quantiles are monotone in `q`, and every reported
//! bucket bound stays within the relative-error guarantee
//! (`v ≤ bound < 2·v` for `v ≥ 1`, exact for `v = 0`).

use proptest::prelude::*;

use flash_telemetry::LatencyHistogram;

fn record_all(samples: &[u64]) -> LatencyHistogram {
    let mut hist = LatencyHistogram::new();
    for &s in samples {
        hist.record(s);
    }
    hist
}

proptest! {
    /// merge(a, b) is indistinguishable from recording a ++ b into one
    /// histogram — counts, totals, max, and every bucket.
    #[test]
    fn merge_equals_concatenation(
        a in prop::collection::vec(0u64..1_000_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000_000, 0..200),
    ) {
        let mut merged = record_all(&a);
        merged.merge(&record_all(&b));
        let concatenated = record_all(&[a.clone(), b.clone()].concat());
        prop_assert_eq!(&merged, &concatenated);
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(
            merged.total_ns(),
            a.iter().sum::<u64>() + b.iter().sum::<u64>()
        );
    }

    /// N-way partition merge — the engine's per-worker accounting shape.
    /// Scatter one sample stream over `workers` histograms by an arbitrary
    /// assignment (each worker records only the commands it executed), then
    /// merge the per-worker histograms in worker order: the result must be
    /// indistinguishable from recording the whole stream into a single
    /// histogram. This is what lets `EngineMetricsReport` fold worker-local
    /// command histograms into one engine-wide view without a shared lock
    /// on the hot path.
    #[test]
    fn per_worker_partition_merges_to_single_stream(
        samples in prop::collection::vec(0u64..1_000_000_000, 0..300),
        assignment in prop::collection::vec(0usize..8, 0..300),
        workers in 1usize..8,
    ) {
        let mut shards = vec![LatencyHistogram::new(); workers];
        for (i, &s) in samples.iter().enumerate() {
            let w = assignment.get(i).copied().unwrap_or(0) % workers;
            shards[w].record(s);
        }
        let mut merged = LatencyHistogram::new();
        for shard in &shards {
            merged.merge(shard);
        }
        let single = record_all(&samples);
        prop_assert_eq!(&merged, &single);
        prop_assert_eq!(merged.count(), samples.len() as u64);
        prop_assert_eq!(merged.total_ns(), samples.iter().sum::<u64>());
    }

    /// Quantiles never decrease as q grows.
    #[test]
    fn quantiles_are_monotone(
        samples in prop::collection::vec(0u64..1_000_000_000, 1..300),
        qs in prop::collection::vec(0.0f64..1.0, 2..16),
    ) {
        let hist = record_all(&samples);
        let mut sorted_qs = qs;
        sorted_qs.push(1.0);
        sorted_qs.sort_by(f64::total_cmp);
        let values: Vec<u64> = sorted_qs.iter().map(|&q| hist.quantile(q)).collect();
        for pair in values.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantiles must be monotone: {values:?}");
        }
    }

    /// The documented relative-error guarantee: for any single recorded
    /// value v ≥ 1 the reported bound b satisfies v ≤ b < 2·v; v = 0 is
    /// exact. (Values beyond the last bucket's range, ≥ 2³⁹, saturate —
    /// the workload domain never reaches them, so the generator stays
    /// within the guaranteed range.)
    #[test]
    fn bucket_bound_within_documented_relative_error(v in 1u64..(1u64 << 39)) {
        let mut hist = LatencyHistogram::new();
        hist.record(v);
        let bound = hist.quantile(1.0);
        prop_assert!(bound >= v, "bound {bound} under-reports {v}");
        prop_assert!(bound < 2 * v, "bound {bound} breaks the < 2x guarantee for {v}");
    }

    /// The error bound holds per-rank in a mixed population too: every
    /// quantile's reported bound is >= some recorded value and < 2x the
    /// largest recorded value at or below that rank.
    #[test]
    fn quantile_bounds_bracket_population(
        samples in prop::collection::vec(1u64..(1u64 << 39), 1..200),
    ) {
        let hist = record_all(&samples);
        let mut sorted = samples;
        sorted.sort_unstable();
        for (i, q) in [0.25f64, 0.5, 0.9, 0.99, 1.0].iter().enumerate() {
            let bound = hist.quantile(*q);
            // Nearest-rank element this quantile targets.
            let rank = ((sorted.len() as f64) * q).ceil().max(1.0) as usize - 1;
            let target = sorted[rank.min(sorted.len() - 1)];
            prop_assert!(
                bound < 2 * target.max(1),
                "q[{i}]={q}: bound {bound} >= 2x rank value {target}"
            );
            // Never under-reports: the rank value lives in the reported
            // bucket, whose upper bound is returned.
            prop_assert!(
                bound >= target,
                "q[{i}]={q}: bound {bound} under-reports rank value {target}"
            );
        }
    }

    /// Zero is represented exactly.
    #[test]
    fn zero_is_exact(extra in prop::collection::vec(0u64..10, 0..20)) {
        let mut hist = LatencyHistogram::new();
        hist.record(0);
        for &s in &extra {
            hist.record(s);
        }
        prop_assert_eq!(hist.quantile(0.0), 0);
    }
}
