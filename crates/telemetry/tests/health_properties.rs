//! Property tests of the health plane's wear-rate estimator and forecast.
//!
//! Pins the contracts `health.rs` documents:
//!
//! - **Split/merge invariance** — folding a constant-rate interval as one
//!   observation or as any chopping of it into sub-intervals yields the
//!   same estimate (the property that makes the estimate independent of
//!   how often an observer happens to poll).
//! - **Rate is a convex combination** — the estimate always lies within
//!   the min..max envelope of the observed interval rates.
//! - **Forecast monotonicity** — a higher tail wear rate never forecasts
//!   *more* remaining life.
//! - **Zero-wear saturation** — with no observed wear the forecast stays
//!   unbounded rather than inventing a failure date, and an
//!   at-or-past-rating wear table forecasts exactly zero.

use proptest::prelude::*;

use flash_telemetry::aggregate::WearSummary;
use flash_telemetry::health::{forecast, WearRateEstimator};

proptest! {
    /// One observation at rate r over W pages == the same W pages chopped
    /// into arbitrary positive sub-intervals, each at rate r.
    #[test]
    fn estimator_is_split_merge_invariant(
        rate in 0.0f64..2.0,
        chunks in prop::collection::vec(1u32..5_000, 1..20),
        tau in 16.0f64..65_536.0,
    ) {
        let total: f64 = chunks.iter().map(|&c| f64::from(c)).sum();
        let mut whole = WearRateEstimator::new(tau);
        whole.observe(rate * total, total);
        let mut split = WearRateEstimator::new(tau);
        for &chunk in &chunks {
            let pages = f64::from(chunk);
            split.observe(rate * pages, pages);
        }
        prop_assert!(
            (whole.rate() - split.rate()).abs() <= 1e-9 * (1.0 + rate),
            "split {} != whole {}",
            split.rate(),
            whole.rate()
        );
    }

    /// However the per-interval rates vary, the blended estimate stays
    /// inside their min..max envelope (it is a convex combination).
    #[test]
    fn estimate_stays_within_observed_rates(
        intervals in prop::collection::vec((0.0f64..3.0, 1u32..10_000), 1..30),
        tau in 16.0f64..65_536.0,
    ) {
        let mut estimator = WearRateEstimator::new(tau);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &(rate, pages) in &intervals {
            estimator.observe(rate * f64::from(pages), f64::from(pages));
            lo = lo.min(rate);
            hi = hi.max(rate);
        }
        prop_assert!(estimator.is_primed());
        let got = estimator.rate();
        prop_assert!(
            got >= lo - 1e-9 && got <= hi + 1e-9,
            "estimate {got} escaped the observed envelope [{lo}, {hi}]"
        );
    }

    /// A faster-wearing tail never forecasts a longer remaining life.
    #[test]
    fn forecast_central_is_monotone_in_tail_rate(
        endurance in 10u64..100_000,
        max_frac in 0.0f64..1.0,
        rate_a in 1e-6f64..10.0,
        rate_b in 1e-6f64..10.0,
    ) {
        let max = ((endurance - 1) as f64 * max_frac) as u64;
        let wear = WearSummary::from_counts([max, max / 2, max / 4]);
        let (slow, fast) = if rate_a <= rate_b { (rate_a, rate_b) } else { (rate_b, rate_a) };
        // Mean pinned at the tail rate: isolates the tail-rate axis.
        let slow_forecast = forecast(endurance, &wear, slow, slow);
        let fast_forecast = forecast(endurance, &wear, fast, fast);
        let (Some(slow_pages), Some(fast_pages)) =
            (slow_forecast.central, fast_forecast.central) else {
            return Err(TestCaseError::fail("positive rates must bound the forecast"));
        };
        prop_assert!(
            fast_pages <= slow_pages,
            "tail rate {fast} forecast {fast_pages} pages but slower {slow} gave {slow_pages}"
        );
    }

    /// Zero observed wear rate → unbounded forecast (never a made-up
    /// deadline); wear at or past the rating → exactly zero, regardless
    /// of the rates.
    #[test]
    fn forecast_saturates_sanely(
        endurance in 1u64..100_000,
        rate in 0.0f64..10.0,
        over in 0u64..1_000,
    ) {
        let fresh = WearSummary::from_counts([0, 0, 0]);
        let unbounded = forecast(endurance, &fresh, 0.0, 0.0);
        prop_assert_eq!(unbounded.central, None);
        prop_assert_eq!(unbounded.earliest, None);
        prop_assert_eq!(unbounded.latest, None);

        let worn = WearSummary::from_counts([endurance + over, endurance / 2]);
        let done = forecast(endurance, &worn, rate, rate);
        prop_assert_eq!(done.central, Some(0));
        prop_assert_eq!(done.earliest, Some(0));
        prop_assert_eq!(done.latest, Some(0));
    }

    /// The band always brackets the central estimate: earliest ≤ central
    /// ≤ latest whenever all three are bounded.
    #[test]
    fn forecast_band_brackets_central(
        endurance in 10u64..100_000,
        max_frac in 0.0f64..1.0,
        p90_frac in 0.0f64..1.0,
        tail_rate in 1e-6f64..10.0,
        mean_frac in 0.0f64..1.0,
    ) {
        let max = ((endurance - 1) as f64 * max_frac) as u64;
        let p90 = (max as f64 * p90_frac) as u64;
        let wear = WearSummary::from_counts([max, p90, p90 / 2]);
        let mean_rate = tail_rate * mean_frac;
        let f = forecast(endurance, &wear, tail_rate, mean_rate);
        let (Some(lo), Some(mid), Some(hi)) = (f.earliest, f.central, f.latest) else {
            return Err(TestCaseError::fail("positive tail rate must bound all three"));
        };
        prop_assert!(lo <= mid, "earliest {lo} > central {mid}");
        prop_assert!(mid <= hi, "central {mid} > latest {hi}");
    }
}
