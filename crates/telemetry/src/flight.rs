//! Crash flight recorder: a fixed-size ring of the most recent events.
//!
//! Aircraft flight recorders keep the last few minutes of everything so the
//! crash site comes with context. This sink does the same for the FTL: it
//! retains the newest [`capacity`](FlightRecorder::capacity) events in a
//! ring and, the instant a [`Event::FaultInjected`] or [`Event::PowerCut`]
//! fires, snapshots the ring as a JSONL document (the trigger event
//! included). `crashmc`-style postmortems then see the spans, GC picks, and
//! SWL activity *leading up to* the cut, not just the cut itself.
//!
//! The recorder is cheap enough to leave always-on: one `VecDeque`
//! push/pop per event and zero allocation outside dump points.

use crate::{json, Event, Sink, SCHEMA_VERSION};
use std::collections::VecDeque;

/// A ring-buffer [`Sink`] that dumps recent history on fault or power cut.
///
/// The stream's [`Event::Meta`] header is held out of the ring so every dump
/// starts with a valid schema header line no matter how far the ring has
/// wrapped.
///
/// # Example
///
/// ```
/// use flash_telemetry::{Event, FaultKind, FlightRecorder, Sink};
///
/// let mut fr = FlightRecorder::with_capacity(4);
/// fr.event(Event::Meta { version: flash_telemetry::SCHEMA_VERSION, blocks: 8, pages_per_block: 4 });
/// for lba in 0..100 {
///     fr.event(Event::HostWrite { lba });
/// }
/// fr.event(Event::FaultInjected { block: 3, kind: FaultKind::EraseFail });
/// let dumps = fr.dumps();
/// assert_eq!(dumps.len(), 1);
/// assert!(dumps[0].lines().next().unwrap().contains("meta"));
/// assert!(dumps[0].lines().last().unwrap().contains("fault"));
/// ```
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    meta: Option<Event>,
    ring: VecDeque<Event>,
    capacity: usize,
    seen: u64,
    dumps: Vec<String>,
}

impl FlightRecorder {
    /// Default ring size: enough for a few dozen host ops with their spans.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// A recorder with [`Self::DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A recorder retaining the newest `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            meta: None,
            ring: VecDeque::with_capacity(capacity),
            capacity,
            seen: 0,
            dumps: Vec::new(),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events observed, including ones the ring has already evicted.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Snapshots the current ring as a JSONL document: a `meta` header line
    /// (synthesized at [`SCHEMA_VERSION`] if the stream never sent one)
    /// followed by the retained events, oldest first.
    pub fn dump(&self) -> String {
        let mut out = String::with_capacity(48 * (self.ring.len() + 1));
        let meta = self.meta.unwrap_or(Event::Meta {
            version: SCHEMA_VERSION,
            blocks: 0,
            pages_per_block: 0,
        });
        json::write_line(&mut out, &meta);
        out.push('\n');
        for event in &self.ring {
            json::write_line(&mut out, event);
            out.push('\n');
        }
        out
    }

    /// Dumps captured automatically on faults/power cuts, oldest first.
    pub fn dumps(&self) -> &[String] {
        &self.dumps
    }

    /// Takes ownership of the captured dumps, leaving none behind.
    pub fn take_dumps(&mut self) -> Vec<String> {
        std::mem::take(&mut self.dumps)
    }

    /// Retained events, oldest first (the ring, not the full stream).
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Sink for FlightRecorder {
    fn event(&mut self, event: Event) {
        self.seen += 1;
        if let Event::Meta { .. } = event {
            self.meta = Some(event);
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(event);
        if matches!(
            event,
            Event::FaultInjected { .. } | Event::PowerCut { .. }
        ) {
            self.dumps.push(self.dump());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultKind;

    #[test]
    fn ring_wraps_keeping_newest() {
        let mut fr = FlightRecorder::with_capacity(3);
        for lba in 0..10u64 {
            fr.event(Event::HostWrite { lba });
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.seen(), 10);
        let lbas: Vec<u64> = fr
            .events()
            .map(|e| match e {
                Event::HostWrite { lba } => *lba,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(lbas, [7, 8, 9]);
    }

    #[test]
    fn meta_survives_wraparound() {
        let mut fr = FlightRecorder::with_capacity(2);
        fr.event(Event::Meta {
            version: SCHEMA_VERSION,
            blocks: 64,
            pages_per_block: 32,
        });
        for lba in 0..50u64 {
            fr.event(Event::HostWrite { lba });
        }
        let dump = fr.dump();
        let first = dump.lines().next().unwrap();
        assert!(first.contains("\"e\":\"meta\""), "got {first}");
        assert!(first.contains("\"blocks\":64"));
        assert_eq!(dump.lines().count(), 3); // meta + 2 ring entries
    }

    #[test]
    fn fault_triggers_dump_including_trigger() {
        let mut fr = FlightRecorder::with_capacity(8);
        fr.event(Event::HostWrite { lba: 1 });
        fr.event(Event::FaultInjected {
            block: 5,
            kind: FaultKind::ProgramFail,
        });
        assert_eq!(fr.dumps().len(), 1);
        let last = fr.dumps()[0].lines().last().unwrap();
        assert!(last.contains("\"e\":\"fault\""), "got {last}");
    }

    #[test]
    fn power_cut_triggers_dump() {
        let mut fr = FlightRecorder::new();
        fr.event(Event::PowerCut {
            at_op: 42,
            torn: false,
        });
        assert_eq!(fr.dumps().len(), 1);
        assert_eq!(fr.take_dumps().len(), 1);
        assert!(fr.dumps().is_empty());
    }

    #[test]
    fn dump_lines_parse_back() {
        let mut fr = FlightRecorder::with_capacity(4);
        fr.event(Event::Meta {
            version: SCHEMA_VERSION,
            blocks: 8,
            pages_per_block: 4,
        });
        fr.event(Event::HostWrite { lba: 9 });
        fr.event(Event::PowerCut {
            at_op: 1,
            torn: true,
        });
        for line in fr.dumps()[0].lines() {
            json::parse_line(line).unwrap();
        }
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut fr = FlightRecorder::with_capacity(0);
        fr.event(Event::HostWrite { lba: 1 });
        fr.event(Event::HostWrite { lba: 2 });
        assert_eq!(fr.len(), 1);
    }
}
