//! A clonable handle that lets several emitters share one sink.
//!
//! A striped multi-channel layer owns one translation layer per channel, and
//! each of those wants to emit into *the same* stream so the log stays a
//! single totally-ordered JSONL file. [`SharedSink`] wraps any [`Sink`] in
//! `Rc<RefCell<…>>` so every lane (and the coordinator itself) can hold a
//! handle; events are interleaved in exactly the order the single-threaded
//! simulator produces them.
//!
//! `ENABLED` is inherited from the wrapped sink, so sharing a
//! [`NullSink`](crate::NullSink) still compiles every emission site out.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::{Event, Sink};

/// Shared handle to a sink; clones emit into the same underlying stream.
pub struct SharedSink<S: Sink> {
    inner: Rc<RefCell<S>>,
}

impl<S: Sink> SharedSink<S> {
    /// Wraps `sink` in a shared handle.
    pub fn new(sink: S) -> Self {
        Self {
            inner: Rc::new(RefCell::new(sink)),
        }
    }

    /// Recovers the wrapped sink.
    ///
    /// # Panics
    ///
    /// Panics when other handles are still alive — drop every clone (e.g.
    /// the per-lane layers) first.
    pub fn into_inner(self) -> S {
        Rc::try_unwrap(self.inner)
            .unwrap_or_else(|_| panic!("other SharedSink handles still alive"))
            .into_inner()
    }

    /// Runs `f` with a view of the wrapped sink.
    pub fn with<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        f(&self.inner.borrow())
    }
}

impl<S: Sink> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        Self {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<S: Sink> fmt::Debug for SharedSink<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedSink")
            .field("handles", &Rc::strong_count(&self.inner))
            .finish()
    }
}

impl<S: Sink> Sink for SharedSink<S> {
    const ENABLED: bool = S::ENABLED;

    #[inline]
    fn event(&mut self, event: Event) {
        self.inner.borrow_mut().event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NullSink, VecSink};

    #[test]
    fn clones_share_one_stream() {
        let mut a = SharedSink::new(VecSink::default());
        let mut b = a.clone();
        a.event(Event::HostWrite { lba: 1 });
        b.event(Event::HostRead { lba: 2 });
        a.event(Event::Channel { id: 1 });
        drop(b);
        let sink = a.into_inner();
        assert_eq!(
            sink.events,
            vec![
                Event::HostWrite { lba: 1 },
                Event::HostRead { lba: 2 },
                Event::Channel { id: 1 },
            ]
        );
    }

    #[test]
    fn enabled_is_inherited() {
        // Read through a fn so the assert sees a runtime value; the point
        // is the associated-const plumbing, not the literal.
        fn enabled<S: Sink>() -> bool {
            S::ENABLED
        }
        assert!(!enabled::<SharedSink<NullSink>>());
        assert!(enabled::<SharedSink<VecSink>>());
    }

    #[test]
    fn with_reads_without_consuming() {
        let mut s = SharedSink::new(VecSink::default());
        s.event(Event::Retire { block: 3 });
        assert_eq!(s.with(|v| v.events.len()), 1);
    }

    #[test]
    #[should_panic(expected = "handles still alive")]
    fn into_inner_requires_last_handle() {
        let a = SharedSink::new(VecSink::default());
        let _b = a.clone();
        let _ = a.into_inner();
    }
}
