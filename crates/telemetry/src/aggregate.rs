//! Fold an event stream into the metrics the paper reasons about.
//!
//! [`MetricsAggregator`] is itself a [`Sink`], so it can be attached to a
//! live run or fed a replayed JSONL log — the two produce identical results.
//! It reconstructs [`FlashCounters`] exactly (each counter increment in the
//! translation layers pairs with exactly one event), and derives what the
//! counters alone cannot show: wear-histogram percentiles and σ over time,
//! an unevenness-level time series, per-resetting-interval erase/copy
//! attribution, and free-pool / victim-index depth gauges.
//!
//! The aggregator tracks unevenness at block granularity (a `k = 0` view):
//! `ecnt` counts erases since the last interval reset and `fcnt` counts
//! distinct blocks erased in that window. For group factors `k > 0` the
//! leveler's own BET-granularity numbers arrive in [`Event::SwlInvoke`] /
//! [`Event::IntervalReset`] and may differ slightly.

use crate::span::{OpBreakdown, SpanCause, SpanCheck, SpanReplayer};
use crate::{Cause, Event, FlashCounters, LatencyHistogram, MergeKind, Sink, SpanKind};

/// Consistency audit of retirement bookkeeping, derived while folding the
/// stream. `swlstat --check` rejects logs where either violation count is
/// non-zero: a retired block must never be erased again, and no block may be
/// retired twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetirementAudit {
    /// Distinct blocks with at least one [`Event::Retire`].
    pub distinct_retired: u64,
    /// [`Event::Retire`] events naming an already-retired block.
    pub duplicate_retires: u64,
    /// [`Event::Erase`] events on a block after its retirement — the wear
    /// map moved for a block the log claims is out of rotation.
    pub erases_after_retire: u64,
}

/// Default number of erases between periodic [`Snapshot`]s.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 1024;

/// Summary statistics over the per-block wear (erase-count) distribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WearSummary {
    /// Mean erase count.
    pub mean: f64,
    /// Population standard deviation of erase counts.
    pub std_dev: f64,
    /// Minimum erase count.
    pub min: u64,
    /// Maximum erase count.
    pub max: u64,
    /// Median (50th percentile, nearest-rank).
    pub p50: u64,
    /// 90th percentile (nearest-rank).
    pub p90: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
}

impl WearSummary {
    /// Summary of an arbitrary collection of per-block erase counts.
    /// Returns the default (all-zero) summary for an empty collection.
    pub fn from_counts<I: IntoIterator<Item = u64>>(counts: I) -> Self {
        let mut sorted: Vec<u64> = counts.into_iter().collect();
        if sorted.is_empty() {
            return WearSummary::default();
        }
        sorted.sort_unstable();
        let n = sorted.len();
        let sum: u64 = sorted.iter().sum();
        let mean = sum as f64 / n as f64;
        let var = sorted
            .iter()
            .map(|&w| {
                let d = w as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        let rank = |q: f64| -> u64 {
            let idx = ((q * n as f64).ceil() as usize).max(1) - 1;
            sorted[idx.min(n - 1)]
        };
        WearSummary {
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: rank(0.50),
            p90: rank(0.90),
            p99: rank(0.99),
        }
    }
}

/// Erase/copy attribution for one resetting interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntervalStats {
    /// 0-based interval index.
    pub index: u64,
    /// Erases observed during the interval (all causes).
    pub erases: u64,
    /// Distinct blocks erased during the interval (block-granularity fcnt).
    pub distinct_blocks: u64,
    /// Erases attributed to garbage collection.
    pub gc_erases: u64,
    /// Erases attributed to the SW Leveler.
    pub swl_erases: u64,
    /// Live copies attributed to garbage collection.
    pub gc_copies: u64,
    /// Live copies attributed to the SW Leveler.
    pub swl_copies: u64,
    /// SWL activations ([`Event::SwlInvoke`]) during the interval.
    pub swl_invokes: u64,
    /// Device faults injected ([`Event::FaultInjected`]) during the interval.
    pub faults: u64,
    /// Blocks retired ([`Event::Retire`]) during the interval.
    pub retires: u64,
}

/// A periodic sample of run state, taken every `snapshot_every` erases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Snapshot {
    /// Total erases (all causes) when the sample was taken.
    pub at_erase: u64,
    /// Wear distribution at sample time.
    pub wear: WearSummary,
    /// Block-granularity unevenness level `ecnt / fcnt` of the current
    /// resetting interval (0.0 before any erase).
    pub unevenness: f64,
    /// 0-based index of the resetting interval in progress.
    pub interval: u64,
    /// Cumulative GC erases.
    pub gc_erases: u64,
    /// Cumulative SWL erases.
    pub swl_erases: u64,
    /// Free-pool depth from the most recent [`Event::GcPick`] (0 before any).
    pub free_depth: u32,
    /// Victim-index candidate count from the most recent [`Event::GcPick`].
    pub victim_candidates: u32,
}

/// Streaming metrics aggregator over telemetry events.
#[derive(Debug, Clone)]
pub struct MetricsAggregator {
    counters: FlashCounters,
    meta: Option<(u32, u32, u32)>,
    endurance: Option<u64>,
    events: u64,
    programs: u64,
    external_erases: u64,
    wear: Vec<u64>,
    erased_in_interval: Vec<bool>,
    current: IntervalStats,
    completed: Vec<IntervalStats>,
    snapshot_every: u64,
    snapshots: Vec<Snapshot>,
    total_erases_seen: u64,
    swl_invokes: u64,
    free_depth: u32,
    victim_candidates: u32,
    faults: u64,
    power_cuts: u64,
    retired: Vec<bool>,
    audit: RetirementAudit,
    spans: SpanReplayer,
    /// Per-cause device-time histograms, indexed by [`SpanCause::index`].
    /// One sample per completed root op *per cause with non-zero time*, so
    /// e.g. the `gc` histogram answers "when a write pays for GC at all,
    /// how much does it pay?" rather than being drowned in zeros.
    cause_hist: [LatencyHistogram; 4],
    write_latency: LatencyHistogram,
    read_latency: LatencyHistogram,
    trim_latency: LatencyHistogram,
    write_programs: u64,
    max_write_programs: u64,
}

impl Default for MetricsAggregator {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsAggregator {
    /// Aggregator with the default snapshot cadence.
    pub fn new() -> Self {
        Self::with_snapshot_every(DEFAULT_SNAPSHOT_EVERY)
    }

    /// Aggregator sampling a [`Snapshot`] every `snapshot_every` erases.
    /// A value of 0 disables periodic snapshots.
    pub fn with_snapshot_every(snapshot_every: u64) -> Self {
        Self {
            counters: FlashCounters::default(),
            meta: None,
            endurance: None,
            events: 0,
            programs: 0,
            external_erases: 0,
            wear: Vec::new(),
            erased_in_interval: Vec::new(),
            current: IntervalStats::default(),
            completed: Vec::new(),
            snapshot_every,
            snapshots: Vec::new(),
            total_erases_seen: 0,
            swl_invokes: 0,
            free_depth: 0,
            victim_candidates: 0,
            faults: 0,
            power_cuts: 0,
            retired: Vec::new(),
            audit: RetirementAudit::default(),
            spans: SpanReplayer::new(),
            cause_hist: Default::default(),
            write_latency: LatencyHistogram::new(),
            read_latency: LatencyHistogram::new(),
            trim_latency: LatencyHistogram::new(),
            write_programs: 0,
            max_write_programs: 0,
        }
    }

    /// Counters reconstructed from the stream. After replaying a complete
    /// log these equal the live run's counters exactly.
    pub fn counters(&self) -> FlashCounters {
        self.counters
    }

    /// `(schema_version, blocks, pages_per_block)` from the stream header,
    /// if a [`Event::Meta`] was seen.
    pub fn meta(&self) -> Option<(u32, u32, u32)> {
        self.meta
    }

    /// Rated erase endurance from the stream's [`Event::Endurance`] header
    /// (schema v4), if one was seen.
    pub fn endurance(&self) -> Option<u64> {
        self.endurance
    }

    /// Total events folded so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Physical page programs observed.
    pub fn programs(&self) -> u64 {
        self.programs
    }

    /// Erases with [`Cause::External`] — outside both GC and SWL, hence not
    /// part of [`FlashCounters`].
    pub fn external_erases(&self) -> u64 {
        self.external_erases
    }

    /// Erases of any cause, `counters().total_erases() + external_erases()`.
    pub fn total_erases_seen(&self) -> u64 {
        self.total_erases_seen
    }

    /// SWL activations observed.
    pub fn swl_invokes(&self) -> u64 {
        self.swl_invokes
    }

    /// Injected device faults observed ([`Event::FaultInjected`]).
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Power cuts observed ([`Event::PowerCut`]).
    pub fn power_cuts(&self) -> u64 {
        self.power_cuts
    }

    /// Retirement bookkeeping audit; see [`RetirementAudit`].
    pub fn retirement_audit(&self) -> RetirementAudit {
        self.audit
    }

    /// Most recent free-pool depth and victim-candidate gauges (both 0
    /// before the first [`Event::GcPick`]).
    pub fn gauges(&self) -> (u32, u32) {
        (self.free_depth, self.victim_candidates)
    }

    /// Completed resetting intervals, oldest first.
    pub fn intervals(&self) -> &[IntervalStats] {
        &self.completed
    }

    /// The interval currently in progress.
    pub fn current_interval(&self) -> IntervalStats {
        self.current
    }

    /// Periodic samples, oldest first.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// Block-granularity unevenness level of the interval in progress:
    /// erases divided by distinct blocks erased (0.0 before any erase).
    pub fn unevenness(&self) -> f64 {
        if self.current.distinct_blocks == 0 {
            0.0
        } else {
            self.current.erases as f64 / self.current.distinct_blocks as f64
        }
    }

    /// Summary of the current per-block wear distribution. Blocks never
    /// erased count as wear 0; the population size comes from the stream
    /// header when present, else from the highest block index seen.
    pub fn wear_summary(&self) -> WearSummary {
        let blocks = match self.meta {
            Some((_, blocks, _)) => blocks as usize,
            None => self.wear.len(),
        };
        let mut padded: Vec<u64> = self.wear.to_vec();
        padded.resize(blocks.max(padded.len()), 0);
        WearSummary::from_counts(padded)
    }

    fn grow_to(&mut self, block: u32) {
        let need = block as usize + 1;
        if self.wear.len() < need {
            self.wear.resize(need, 0);
            self.erased_in_interval.resize(need, false);
            self.retired.resize(need, false);
        }
    }

    fn take_snapshot(&mut self) {
        let snap = Snapshot {
            at_erase: self.total_erases_seen,
            wear: self.wear_summary(),
            unevenness: self.unevenness(),
            interval: self.current.index,
            gc_erases: self.counters.gc_erases,
            swl_erases: self.counters.swl_erases,
            free_depth: self.free_depth,
            victim_candidates: self.victim_candidates,
        };
        self.snapshots.push(snap);
    }

    /// Take a final snapshot of the current state (used by `swlstat` so the
    /// last partial sampling window still appears in time series).
    pub fn snapshot_now(&mut self) {
        self.take_snapshot();
    }

    /// Structural health of the span stream (balance, nesting, bounds).
    /// `swlstat --check` rejects schema-v3 logs where this is not clean.
    pub fn span_check(&self) -> SpanCheck {
        self.spans.check()
    }

    /// Root spans (host operations) completed so far.
    pub fn spans_completed(&self) -> u64 {
        self.spans.completed_roots()
    }

    /// Device-time histogram for one attribution cause.
    ///
    /// Each completed root op contributes one sample *per cause with
    /// non-zero time*, so counts differ across causes: `host` sees nearly
    /// every op, `swl` only the ops that actually paid for a leveling pass.
    pub fn cause_latency(&self, cause: SpanCause) -> &LatencyHistogram {
        &self.cause_hist[cause.index()]
    }

    /// Total-device-time histogram for completed root spans of `kind`
    /// (`None` for non-root kinds). Matches the simulator's own per-op
    /// latency stats bit-exactly when fed the same run's events.
    pub fn op_latency(&self, kind: SpanKind) -> Option<&LatencyHistogram> {
        match kind {
            SpanKind::HostWrite => Some(&self.write_latency),
            SpanKind::HostRead => Some(&self.read_latency),
            SpanKind::HostTrim => Some(&self.trim_latency),
            SpanKind::Gc | SpanKind::Swl | SpanKind::Merge => None,
        }
    }

    /// Mean physical programs per completed host-write span — the per-op
    /// write-amplification figure (0.0 before any write span completes).
    pub fn write_amplification(&self) -> f64 {
        let writes = self.write_latency.count();
        if writes == 0 {
            0.0
        } else {
            self.write_programs as f64 / writes as f64
        }
    }

    /// Largest program count observed under a single host-write span.
    pub fn max_write_programs(&self) -> u64 {
        self.max_write_programs
    }

    fn fold_op(&mut self, op: OpBreakdown) {
        for cause in SpanCause::ALL {
            let ns = op.ns(cause);
            if ns > 0 {
                self.cause_hist[cause.index()].record(ns);
            }
        }
        match op.kind {
            SpanKind::HostWrite => {
                self.write_latency.record(op.total_ns());
                self.write_programs += op.programs;
                self.max_write_programs = self.max_write_programs.max(op.programs);
            }
            SpanKind::HostRead => self.read_latency.record(op.total_ns()),
            SpanKind::HostTrim => self.trim_latency.record(op.total_ns()),
            SpanKind::Gc | SpanKind::Swl | SpanKind::Merge => {}
        }
    }
}

impl Sink for MetricsAggregator {
    fn event(&mut self, event: Event) {
        self.events += 1;
        // The span replayer watches the whole stream (it counts Program
        // events under open roots and PowerCuts for its checker) and yields
        // a breakdown whenever a host-op span completes.
        if let Some(op) = self.spans.observe(&event) {
            self.fold_op(op);
        }
        match event {
            Event::Meta {
                version,
                blocks,
                pages_per_block,
            } => {
                self.meta = Some((version, blocks, pages_per_block));
                self.grow_to(blocks.saturating_sub(1));
            }
            Event::Endurance { limit } => self.endurance = Some(limit),
            Event::HostWrite { .. } => self.counters.host_writes += 1,
            Event::HostRead { .. } => self.counters.host_reads += 1,
            Event::HostTrim { .. } => self.counters.trims += 1,
            Event::Program { .. } => self.programs += 1,
            Event::Erase { block, wear, cause } => {
                self.grow_to(block);
                if self.retired[block as usize] {
                    self.audit.erases_after_retire += 1;
                }
                self.wear[block as usize] = wear;
                self.total_erases_seen += 1;
                self.current.erases += 1;
                if !self.erased_in_interval[block as usize] {
                    self.erased_in_interval[block as usize] = true;
                    self.current.distinct_blocks += 1;
                }
                match cause {
                    Cause::Gc => {
                        self.counters.gc_erases += 1;
                        self.current.gc_erases += 1;
                    }
                    Cause::Swl => {
                        self.counters.swl_erases += 1;
                        self.current.swl_erases += 1;
                    }
                    Cause::External => self.external_erases += 1,
                }
                if self.snapshot_every > 0 && self.total_erases_seen.is_multiple_of(self.snapshot_every)
                {
                    self.take_snapshot();
                }
            }
            Event::LiveCopy { cause, .. } => match cause {
                Cause::Swl => {
                    self.counters.swl_live_copies += 1;
                    self.current.swl_copies += 1;
                }
                _ => {
                    self.counters.gc_live_copies += 1;
                    self.current.gc_copies += 1;
                }
            },
            Event::GcPick {
                free_depth,
                candidates,
                ..
            } => {
                self.counters.gc_collections += 1;
                self.free_depth = free_depth;
                self.victim_candidates = candidates;
            }
            Event::Merge { kind, .. } => match kind {
                MergeKind::Full => self.counters.full_merges += 1,
                MergeKind::Gc => self.counters.gc_merges += 1,
                MergeKind::Swl => self.counters.swl_merges += 1,
            },
            Event::Retire { block } => {
                self.counters.retired_blocks += 1;
                self.current.retires += 1;
                self.grow_to(block);
                if self.retired[block as usize] {
                    self.audit.duplicate_retires += 1;
                } else {
                    self.retired[block as usize] = true;
                    self.audit.distinct_retired += 1;
                }
            }
            Event::FaultInjected { .. } => {
                self.faults += 1;
                self.current.faults += 1;
            }
            Event::PowerCut { .. } => self.power_cuts += 1,
            Event::SwlInvoke { .. } => {
                self.swl_invokes += 1;
                self.current.swl_invokes += 1;
            }
            Event::IntervalReset { .. } => {
                let index = self.current.index;
                self.completed.push(self.current);
                self.current = IntervalStats {
                    index: index + 1,
                    ..IntervalStats::default()
                };
                self.erased_in_interval.iter_mut().for_each(|b| *b = false);
            }
            // Handled by the span replayer above.
            Event::SpanBegin { .. } | Event::SpanEnd { .. } => {}
            // Lane attribution concerns the span viewer (`swlspan`), not the
            // aggregate counters, which stay array-wide.
            Event::Channel { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn erase(block: u32, wear: u64, cause: Cause) -> Event {
        Event::Erase { block, wear, cause }
    }

    #[test]
    fn counters_match_event_stream() {
        let mut agg = MetricsAggregator::new();
        agg.event(Event::Meta {
            version: 1,
            blocks: 4,
            pages_per_block: 8,
        });
        agg.event(Event::HostWrite { lba: 1 });
        agg.event(Event::HostWrite { lba: 2 });
        agg.event(Event::HostRead { lba: 1 });
        agg.event(Event::HostTrim { lba: 2 });
        agg.event(Event::GcPick {
            key: 0,
            invalid: 6,
            valid: 2,
            free_depth: 3,
            candidates: 2,
        });
        agg.event(Event::LiveCopy {
            from_block: 0,
            to_block: 1,
            cause: Cause::Gc,
        });
        agg.event(erase(0, 1, Cause::Gc));
        agg.event(erase(1, 1, Cause::Swl));
        agg.event(erase(2, 1, Cause::External));
        agg.event(Event::Merge {
            vba: 0,
            kind: MergeKind::Full,
        });
        agg.event(Event::Retire { block: 3 });
        let c = agg.counters();
        assert_eq!(c.host_writes, 2);
        assert_eq!(c.host_reads, 1);
        assert_eq!(c.trims, 1);
        assert_eq!(c.gc_collections, 1);
        assert_eq!(c.gc_erases, 1);
        assert_eq!(c.swl_erases, 1);
        assert_eq!(c.gc_live_copies, 1);
        assert_eq!(c.full_merges, 1);
        assert_eq!(c.retired_blocks, 1);
        assert_eq!(agg.external_erases(), 1);
        assert_eq!(agg.total_erases_seen(), 3);
        assert_eq!(agg.gauges(), (3, 2));
    }

    #[test]
    fn unevenness_tracks_interval_resets() {
        let mut agg = MetricsAggregator::new();
        agg.event(erase(0, 1, Cause::Gc));
        agg.event(erase(0, 2, Cause::Gc));
        agg.event(erase(1, 1, Cause::Gc));
        // 3 erases over 2 distinct blocks.
        assert_eq!(agg.unevenness(), 1.5);
        agg.event(Event::IntervalReset {
            interval: 0,
            ecnt: 3,
            fcnt: 2,
        });
        assert_eq!(agg.unevenness(), 0.0);
        assert_eq!(agg.intervals().len(), 1);
        assert_eq!(agg.intervals()[0].erases, 3);
        assert_eq!(agg.intervals()[0].distinct_blocks, 2);
        assert_eq!(agg.current_interval().index, 1);
        // Distinct-block tracking restarts after the reset.
        agg.event(erase(0, 3, Cause::Gc));
        assert_eq!(agg.unevenness(), 1.0);
    }

    #[test]
    fn wear_summary_pads_unseen_blocks() {
        let mut agg = MetricsAggregator::new();
        agg.event(Event::Meta {
            version: 1,
            blocks: 4,
            pages_per_block: 8,
        });
        agg.event(erase(0, 10, Cause::Gc));
        let w = agg.wear_summary();
        assert_eq!(w.min, 0);
        assert_eq!(w.max, 10);
        assert_eq!(w.mean, 2.5);
        assert_eq!(w.p99, 10);
        assert_eq!(w.p50, 0);
    }

    #[test]
    fn spans_fold_into_cause_histograms() {
        let mut agg = MetricsAggregator::new();
        // write #1: 200 ns, pure host, 1 program.
        agg.event(Event::SpanBegin {
            id: 1,
            parent: 0,
            kind: SpanKind::HostWrite,
            at_ns: 0,
        });
        agg.event(Event::Program { block: 0, page: 0 });
        agg.event(Event::SpanEnd { id: 1, at_ns: 200 });
        // write #2: 1000 ns total, 600 of it in a GC episode, 3 programs.
        agg.event(Event::SpanBegin {
            id: 2,
            parent: 0,
            kind: SpanKind::HostWrite,
            at_ns: 200,
        });
        agg.event(Event::Program { block: 1, page: 0 });
        agg.event(Event::SpanBegin {
            id: 3,
            parent: 2,
            kind: SpanKind::Gc,
            at_ns: 400,
        });
        agg.event(Event::Program { block: 2, page: 0 });
        agg.event(Event::Program { block: 2, page: 1 });
        agg.event(Event::SpanEnd { id: 3, at_ns: 1000 });
        agg.event(Event::SpanEnd { id: 2, at_ns: 1200 });
        assert_eq!(agg.spans_completed(), 2);
        assert!(agg.span_check().is_clean());
        let writes = agg.op_latency(SpanKind::HostWrite).unwrap();
        assert_eq!(writes.count(), 2);
        assert_eq!(writes.total_ns(), 1200);
        assert_eq!(writes.max_ns(), 1000);
        // host: both ops contribute (200 and 400); gc: only op #2 (600).
        assert_eq!(agg.cause_latency(SpanCause::Host).count(), 2);
        assert_eq!(agg.cause_latency(SpanCause::Host).total_ns(), 600);
        assert_eq!(agg.cause_latency(SpanCause::Gc).count(), 1);
        assert_eq!(agg.cause_latency(SpanCause::Gc).total_ns(), 600);
        assert_eq!(agg.cause_latency(SpanCause::Swl).count(), 0);
        // Attribution is exhaustive: causes sum to op totals.
        let cause_total: u64 = SpanCause::ALL
            .iter()
            .map(|&c| agg.cause_latency(c).total_ns())
            .sum();
        assert_eq!(cause_total, writes.total_ns());
        assert_eq!(agg.write_amplification(), 2.0); // 4 programs / 2 writes
        assert_eq!(agg.max_write_programs(), 3);
        assert!(agg.op_latency(SpanKind::Gc).is_none());
    }

    #[test]
    fn snapshots_fire_on_cadence() {
        let mut agg = MetricsAggregator::with_snapshot_every(2);
        for i in 0..5 {
            agg.event(erase(i % 3, (i / 3 + 1) as u64, Cause::Gc));
        }
        assert_eq!(agg.snapshots().len(), 2);
        assert_eq!(agg.snapshots()[0].at_erase, 2);
        assert_eq!(agg.snapshots()[1].at_erase, 4);
        agg.snapshot_now();
        assert_eq!(agg.snapshots().len(), 3);
        assert_eq!(agg.snapshots()[2].at_erase, 5);
    }
}
