//! SMART-style device health plane: online wear-rate estimation and a
//! time-to-first-block-failure forecast.
//!
//! The rest of this crate *records* wear; this module *projects* it. A
//! [`HealthMonitor`] folds cumulative wear observations — either live
//! [`HealthSample`]s read from a shared [`HealthRuntime`] atomics block, or
//! a replayed telemetry event stream (the monitor is a [`Sink`]) — into
//! work-weighted wear-rate estimators and produces a [`HealthReport`]: wear
//! percentiles and sigma, retired-block fraction, BET unevenness trend,
//! cache absorption, a composite [`HealthState`], and a forecast of how
//! many more host pages the device can absorb before its first block
//! reaches the endurance limit.
//!
//! # The estimator
//!
//! [`WearRateEstimator`] is an exponentially weighted average over *work*
//! (host pages), not over observations: an observation covering `Δp` pages
//! at rate `ρ = Δw/Δp` decays the prior estimate by `exp(-Δp/τ)` and blends
//! `ρ` in with weight `1 - exp(-Δp/τ)`. Because the decay composes
//! multiplicatively, splitting one observation into consecutive chunks at
//! the same rate — or merging such chunks — leaves the estimate unchanged
//! (the telemetry-interval split/merge invariance pinned by the estimator
//! proptests), and the sampling cadence cannot bias the estimate.
//!
//! # The forecast and its honest limits
//!
//! The first block to fail is the one with maximum wear, so the central
//! forecast is `(endurance - max_wear) / tail_rate`, where `tail_rate` is
//! the estimated advance of the *maximum* wear per host page. The
//! confidence band comes from the wear histogram tail:
//!
//! - **earliest**: if wear is concentrating (the tail advancing faster than
//!   the mean), assume the concentration excess could double:
//!   `headroom / (tail_rate + (tail_rate - mean_rate))`;
//! - **latest**: even if today's hottest block stops absorbing wear, the
//!   p90 block must still chew through its own headroom at the observed
//!   tail rate: `(endurance - p90_wear) / tail_rate`.
//!
//! The forecast extrapolates the *observed* workload at the *rated*
//! endurance. It cannot see workload shifts, and fault-injected blocks that
//! die below their rating fail earlier than any wear-based forecast can
//! predict — `healthbench` measures both effects against real first
//! failures, and [`HALF_LIFE_ERROR_BOUND`] states the bound the rated-
//! endurance arm must meet (asserted in `tests/health_forecast.rs`).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::aggregate::WearSummary;
use crate::runtime::CacheSample;
use crate::{Cause, Event, Sink};

/// Documented bound on the relative error of the central forecast issued at
/// 50% of device life, for runs whose blocks fail at their rated endurance
/// (no fault injection). `healthbench` measures it; `tests/` assert it.
pub const HALF_LIFE_ERROR_BOUND: f64 = 0.25;

/// Tuning for the health plane: the rated endurance, the estimator's work
/// constant, and the documented [`HealthState`] thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Rated program/erase cycles per block (0 = unknown; forecasting is
    /// disabled until an [`Event::Endurance`] header or a builder sets it).
    pub endurance: u64,
    /// Work constant of the rate estimators, in host pages: observations
    /// older than a few τ have negligible weight.
    pub tau_pages: f64,
    /// `max_wear / endurance` at which the state degrades to Warn (0.70).
    pub warn_life: f64,
    /// `max_wear / endurance` at which the state degrades to Critical
    /// (0.90).
    pub critical_life: f64,
    /// BET unevenness trend (`ecnt/fcnt` EWMA) at which the state degrades
    /// to Warn — wear is concentrating faster than the leveler spreads it.
    pub warn_unevenness: f64,
    /// Retired-block fraction at which the state degrades to Critical
    /// (0.01); any retirement at all already degrades to Warn.
    pub critical_retired_frac: f64,
}

impl HealthConfig {
    /// Defaults for a device rated at `endurance` cycles per block.
    pub fn new(endurance: u64) -> Self {
        Self {
            endurance,
            tau_pages: 4096.0,
            warn_life: 0.70,
            critical_life: 0.90,
            warn_unevenness: 4.0,
            critical_retired_frac: 0.01,
        }
    }

    /// Replaces the estimator work constant (clamped to ≥ 1 page).
    pub fn with_tau_pages(mut self, tau_pages: f64) -> Self {
        self.tau_pages = tau_pages.max(1.0);
        self
    }

    /// Replaces the Warn life-used threshold.
    pub fn with_warn_life(mut self, frac: f64) -> Self {
        self.warn_life = frac;
        self
    }

    /// Replaces the Critical life-used threshold.
    pub fn with_critical_life(mut self, frac: f64) -> Self {
        self.critical_life = frac;
        self
    }
}

/// Composite health verdict, ordered by severity. Thresholds live in
/// [`HealthConfig`] and are documented there and in ARCHITECTURE.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// No threshold crossed.
    Good,
    /// Life used past `warn_life`, any block retired, or the BET
    /// unevenness trend past `warn_unevenness`.
    Warn,
    /// Life used past `critical_life` or retired fraction past
    /// `critical_retired_frac`.
    Critical,
}

impl HealthState {
    /// Short stable token for reports and JSONL lines.
    pub fn token(self) -> &'static str {
        match self {
            HealthState::Good => "good",
            HealthState::Warn => "warn",
            HealthState::Critical => "critical",
        }
    }

    /// Numeric severity code (0 = Good, 1 = Warn, 2 = Critical).
    pub fn code(self) -> u64 {
        match self {
            HealthState::Good => 0,
            HealthState::Warn => 1,
            HealthState::Critical => 2,
        }
    }
}

/// Work-weighted exponential average of a wear rate (wear units per host
/// page). See the module docs for the split/merge-invariance property.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WearRateEstimator {
    num: f64,
    weight: f64,
    tau: f64,
}

impl WearRateEstimator {
    /// An empty estimator with work constant `tau_pages` (clamped ≥ 1).
    pub fn new(tau_pages: f64) -> Self {
        Self {
            num: 0.0,
            weight: 0.0,
            tau: tau_pages.max(1.0),
        }
    }

    /// Folds one observation: `delta_wear` wear units accumulated over
    /// `delta_pages` host pages. Non-positive spans are ignored; negative
    /// wear deltas clamp to zero (wear is monotone).
    pub fn observe(&mut self, delta_wear: f64, delta_pages: f64) {
        if !delta_pages.is_finite() || delta_pages <= 0.0 {
            return;
        }
        let decay = (-delta_pages / self.tau).exp();
        let gain = 1.0 - decay;
        let rate = (delta_wear / delta_pages).max(0.0);
        self.num = self.num * decay + rate * gain;
        self.weight = self.weight * decay + gain;
    }

    /// The current estimate in wear units per host page (0 until the first
    /// observation).
    pub fn rate(&self) -> f64 {
        if self.weight > 0.0 {
            self.num / self.weight
        } else {
            0.0
        }
    }

    /// Whether at least one observation has been folded.
    pub fn is_primed(&self) -> bool {
        self.weight > 0.0
    }
}

/// Host pages the device is forecast to absorb before its first block
/// failure. `None` means unbounded at the current estimate (zero observed
/// wear rate, or unknown endurance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Forecast {
    /// Central estimate: `(endurance - max_wear) / tail_rate`.
    pub central: Option<u64>,
    /// Early edge of the confidence band (wear-concentration pessimism).
    pub earliest: Option<u64>,
    /// Late edge of the confidence band (histogram-tail optimism).
    pub latest: Option<u64>,
}

/// Computes the forecast from the wear summary tail and the two rate
/// estimates (see the module docs for the exact model).
pub fn forecast(endurance: u64, wear: &WearSummary, tail_rate: f64, mean_rate: f64) -> Forecast {
    if endurance == 0 {
        return Forecast::default();
    }
    if wear.max >= endurance {
        // A block is already at (or past) its rating: failure is now.
        return Forecast {
            central: Some(0),
            earliest: Some(0),
            latest: Some(0),
        };
    }
    if !tail_rate.is_finite() || tail_rate <= 0.0 {
        return Forecast::default();
    }
    let headroom = (endurance - wear.max) as f64;
    let tail_headroom = (endurance - wear.p90.min(wear.max)) as f64;
    let concentration = (tail_rate - mean_rate).max(0.0);
    let pages = |head: f64, rate: f64| -> Option<u64> {
        if rate > 0.0 {
            Some((head / rate).round() as u64)
        } else {
            None
        }
    };
    Forecast {
        central: pages(headroom, tail_rate),
        earliest: pages(headroom, tail_rate + concentration),
        latest: pages(tail_headroom, tail_rate),
    }
}

/// One SMART-style health report: the wear distribution, erase attribution,
/// rate estimates, composite state, and the failure forecast.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Physical blocks covered by the wear table.
    pub blocks: u64,
    /// Rated endurance the forecast assumes (0 = unknown).
    pub endurance: u64,
    /// Cumulative host pages written to flash (post-cache).
    pub host_pages: u64,
    /// Per-block wear distribution summary.
    pub wear: WearSummary,
    /// Blocks retired from rotation so far.
    pub retired: u64,
    /// Erases attributed to garbage collection.
    pub gc_erases: u64,
    /// Erases attributed to the SW Leveler.
    pub swl_erases: u64,
    /// Erases outside GC/SWL (formatting, tests).
    pub ext_erases: u64,
    /// BET erase count in the current resetting interval (summed over
    /// lanes; 0 when no leveler is attached).
    pub bet_ecnt: u64,
    /// BET flags set in the current resetting interval (summed over lanes).
    pub bet_fcnt: u64,
    /// Estimated advance of the maximum wear per host page.
    pub tail_rate: f64,
    /// Estimated advance of the mean wear per host page.
    pub mean_rate: f64,
    /// EWMA of the observed BET unevenness level `ecnt/fcnt` (0 until a
    /// leveler reports).
    pub unevenness_trend: f64,
    /// Write-cache counters at report time (`None` when cache-less).
    pub cache: Option<CacheSample>,
    /// `max_wear / endurance` (0 when the endurance is unknown).
    pub life_used: f64,
    /// Composite verdict against the configured thresholds.
    pub state: HealthState,
    /// Host pages remaining before first block failure.
    pub forecast: Forecast,
}

impl HealthReport {
    /// Fraction of blocks retired from rotation.
    pub fn retired_frac(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.retired as f64 / self.blocks as f64
        }
    }

    /// Fraction of host write traffic the cache absorbed (0 cache-less).
    pub fn cache_absorption(&self) -> f64 {
        self.cache.map(|c| c.write_hit_rate()).unwrap_or(0.0)
    }
}

/// Shared atomics block the execution engine's lane sinks update in place:
/// a per-block wear table plus erase/retirement attribution counters, all
/// relaxed monotone writes by the owning worker threads, readable at any
/// instant by an observer ([`HealthRuntime::sample`]) without locks — the
/// same discipline as [`crate::runtime::EngineRuntime`]. Wear updates ride
/// the telemetry emission sites the device already has, so attaching the
/// health plane adds no clock reads and no locking to the data path.
#[derive(Debug)]
pub struct HealthRuntime {
    config: HealthConfig,
    wear: Vec<AtomicU64>,
    retired: AtomicU64,
    gc_erases: AtomicU64,
    swl_erases: AtomicU64,
    ext_erases: AtomicU64,
    host_pages: AtomicU64,
    bet_ecnt: AtomicU64,
    bet_fcnt: AtomicU64,
}

impl HealthRuntime {
    /// A zeroed runtime covering `blocks` physical blocks.
    pub fn new(blocks: usize, config: HealthConfig) -> Self {
        Self {
            config,
            wear: (0..blocks).map(|_| AtomicU64::new(0)).collect(),
            retired: AtomicU64::new(0),
            gc_erases: AtomicU64::new(0),
            swl_erases: AtomicU64::new(0),
            ext_erases: AtomicU64::new(0),
            host_pages: AtomicU64::new(0),
            bet_ecnt: AtomicU64::new(0),
            bet_fcnt: AtomicU64::new(0),
        }
    }

    /// The configuration observers should build their monitors with.
    pub fn config(&self) -> HealthConfig {
        self.config
    }

    /// Physical blocks covered.
    pub fn blocks(&self) -> usize {
        self.wear.len()
    }

    /// Folds one telemetry event emitted by the lane whose first block has
    /// flat (array-wide) index `base`. Only wear-bearing events are
    /// inspected; everything else is a discriminant check.
    #[inline]
    pub fn observe_event(&self, base: u64, event: &Event) {
        match *event {
            Event::Erase { block, wear, cause } => {
                if let Some(slot) = self.wear.get(base as usize + block as usize) {
                    slot.store(wear, Ordering::Relaxed);
                }
                let counter = match cause {
                    Cause::Gc => &self.gc_erases,
                    Cause::Swl => &self.swl_erases,
                    Cause::External => &self.ext_erases,
                };
                counter.fetch_add(1, Ordering::Relaxed);
            }
            Event::Retire { .. } => {
                self.retired.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    /// Counts `n` host pages accepted by the front-end (the forecast's
    /// work axis).
    pub fn add_host_pages(&self, n: u64) {
        self.host_pages.fetch_add(n, Ordering::Relaxed);
    }

    /// Publishes the array-wide BET gauges (current resetting interval).
    pub fn set_bet(&self, ecnt: u64, fcnt: u64) {
        self.bet_ecnt.store(ecnt, Ordering::Relaxed);
        self.bet_fcnt.store(fcnt, Ordering::Relaxed);
    }

    /// Reads every counter into a plain [`HealthSample`]. Per-slot wear
    /// reads are relaxed and monotone, so a torn read can only lag.
    pub fn sample(&self) -> HealthSample {
        HealthSample {
            wear: self.wear.iter().map(|w| w.load(Ordering::Relaxed)).collect(),
            retired: self.retired.load(Ordering::Relaxed),
            gc_erases: self.gc_erases.load(Ordering::Relaxed),
            swl_erases: self.swl_erases.load(Ordering::Relaxed),
            ext_erases: self.ext_erases.load(Ordering::Relaxed),
            host_pages: self.host_pages.load(Ordering::Relaxed),
            bet_ecnt: self.bet_ecnt.load(Ordering::Relaxed),
            bet_fcnt: self.bet_fcnt.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time cumulative view of a [`HealthRuntime`] (plain numbers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthSample {
    /// Per-block cumulative erase counts, flat array order.
    pub wear: Vec<u64>,
    /// Blocks retired so far.
    pub retired: u64,
    /// GC-attributed erases.
    pub gc_erases: u64,
    /// SWL-attributed erases.
    pub swl_erases: u64,
    /// External erases.
    pub ext_erases: u64,
    /// Host pages accepted so far.
    pub host_pages: u64,
    /// Current-interval BET erase count.
    pub bet_ecnt: u64,
    /// Current-interval BET flag count.
    pub bet_fcnt: u64,
}

impl HealthSample {
    /// Distribution summary of the wear table.
    pub fn wear_summary(&self) -> WearSummary {
        WearSummary::from_counts(self.wear.iter().copied())
    }
}

/// EWMA blend factor for the unevenness trend (per leveler report).
const UNEVENNESS_ALPHA: f64 = 0.25;

/// The cumulative counters a [`HealthReport`] is built from — one bundle
/// whether they come from a live [`HealthSample`] or the replayed stream.
struct ReportCounters {
    blocks: u64,
    retired: u64,
    gc_erases: u64,
    swl_erases: u64,
    ext_erases: u64,
    host_pages: u64,
    bet_ecnt: u64,
    bet_fcnt: u64,
}

/// Folds cumulative wear observations into rate estimators and produces
/// [`HealthReport`]s. Two feeding modes share all state:
///
/// - **live**: call [`HealthMonitor::report_on`] with successive
///   [`HealthSample`]s read from a [`HealthRuntime`] — each call advances
///   the estimators by the delta since the previous sample;
/// - **replay**: use the monitor as a [`Sink`] over a telemetry stream
///   (live or parsed from JSONL); the estimators advance on every
///   [`Event::IntervalReset`] and [`HealthMonitor::report`] folds the
///   partial tail.
///
/// Both paths are idempotent over zero-work intervals, so sampling cadence
/// cannot bias the estimate (see [`WearRateEstimator`]).
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    config: HealthConfig,
    tail: WearRateEstimator,
    mean: WearRateEstimator,
    unevenness_trend: f64,
    unevenness_primed: bool,
    last_pages: u64,
    last_max: f64,
    last_mean: f64,
    // Replay-mode cumulative state (unused when samples are supplied).
    wear: Vec<u64>,
    blocks_hint: usize,
    retired: u64,
    gc_erases: u64,
    swl_erases: u64,
    ext_erases: u64,
    host_pages: u64,
    bet_ecnt: u64,
    bet_fcnt: u64,
}

impl HealthMonitor {
    /// An empty monitor with the given configuration.
    pub fn new(config: HealthConfig) -> Self {
        Self {
            config,
            tail: WearRateEstimator::new(config.tau_pages),
            mean: WearRateEstimator::new(config.tau_pages),
            unevenness_trend: 0.0,
            unevenness_primed: false,
            last_pages: 0,
            last_max: 0.0,
            last_mean: 0.0,
            wear: Vec::new(),
            blocks_hint: 0,
            retired: 0,
            gc_erases: 0,
            swl_erases: 0,
            ext_erases: 0,
            host_pages: 0,
            bet_ecnt: 0,
            bet_fcnt: 0,
        }
    }

    /// The active configuration (replayed [`Event::Endurance`] headers can
    /// update the endurance).
    pub fn config(&self) -> HealthConfig {
        self.config
    }

    /// Advances both estimators to the cumulative `(pages, max, mean)`
    /// point. Idempotent when no pages elapsed.
    fn advance(&mut self, pages: u64, max: f64, mean: f64) {
        let delta = pages.saturating_sub(self.last_pages);
        if delta == 0 {
            return;
        }
        self.tail.observe(max - self.last_max, delta as f64);
        self.mean.observe(mean - self.last_mean, delta as f64);
        self.last_pages = pages;
        self.last_max = max;
        self.last_mean = mean;
    }

    /// Blends one observed BET unevenness level into the trend.
    fn observe_unevenness(&mut self, level: f64) {
        if self.unevenness_primed {
            self.unevenness_trend += UNEVENNESS_ALPHA * (level - self.unevenness_trend);
        } else {
            self.unevenness_trend = level;
            self.unevenness_primed = true;
        }
    }

    /// Composite verdict against the configured thresholds (documented on
    /// [`HealthConfig`] and in ARCHITECTURE.md).
    fn state_of(&self, life_used: f64, retired: u64, retired_frac: f64) -> HealthState {
        if (self.config.endurance > 0 && life_used >= self.config.critical_life)
            || retired_frac >= self.config.critical_retired_frac && retired > 0
        {
            return HealthState::Critical;
        }
        if (self.config.endurance > 0 && life_used >= self.config.warn_life)
            || retired > 0
            || self.unevenness_trend >= self.config.warn_unevenness
        {
            return HealthState::Warn;
        }
        HealthState::Good
    }

    fn build_report(
        &self,
        counters: ReportCounters,
        wear: WearSummary,
        cache: Option<CacheSample>,
    ) -> HealthReport {
        let ReportCounters {
            blocks,
            retired,
            gc_erases,
            swl_erases,
            ext_erases,
            host_pages,
            bet_ecnt,
            bet_fcnt,
        } = counters;
        let endurance = self.config.endurance;
        let life_used = if endurance == 0 {
            0.0
        } else {
            wear.max as f64 / endurance as f64
        };
        let retired_frac = if blocks == 0 {
            0.0
        } else {
            retired as f64 / blocks as f64
        };
        let tail_rate = self.tail.rate();
        let mean_rate = self.mean.rate();
        HealthReport {
            blocks,
            endurance,
            host_pages,
            wear,
            retired,
            gc_erases,
            swl_erases,
            ext_erases,
            bet_ecnt,
            bet_fcnt,
            tail_rate,
            mean_rate,
            unevenness_trend: self.unevenness_trend,
            cache,
            life_used,
            state: self.state_of(life_used, retired, retired_frac),
            forecast: forecast(endurance, &wear, tail_rate, mean_rate),
        }
    }

    /// Live mode: folds one cumulative [`HealthSample`] and returns the
    /// report at that point. Consecutive calls advance the estimators by
    /// the inter-sample delta.
    pub fn report_on(
        &mut self,
        sample: &HealthSample,
        cache: Option<CacheSample>,
    ) -> HealthReport {
        let summary = sample.wear_summary();
        self.advance(sample.host_pages, summary.max as f64, summary.mean);
        if sample.bet_fcnt > 0 {
            self.observe_unevenness(sample.bet_ecnt as f64 / sample.bet_fcnt as f64);
        }
        self.build_report(
            ReportCounters {
                blocks: sample.wear.len() as u64,
                retired: sample.retired,
                gc_erases: sample.gc_erases,
                swl_erases: sample.swl_erases,
                ext_erases: sample.ext_erases,
                host_pages: sample.host_pages,
                bet_ecnt: sample.bet_ecnt,
                bet_fcnt: sample.bet_fcnt,
            },
            summary,
            cache,
        )
    }

    /// Replay-mode wear summary over the internal table (padded to the
    /// stream header's block count).
    fn replay_summary(&self) -> WearSummary {
        let blocks = self.blocks_hint.max(self.wear.len());
        WearSummary::from_counts(
            self.wear
                .iter()
                .copied()
                .chain(std::iter::repeat_n(0, blocks - self.wear.len())),
        )
    }

    /// Replay mode: the report over everything folded so far (advances the
    /// estimators over the partial interval tail first).
    pub fn report(&mut self, cache: Option<CacheSample>) -> HealthReport {
        let summary = self.replay_summary();
        self.advance(self.host_pages, summary.max as f64, summary.mean);
        self.build_report(
            ReportCounters {
                blocks: self.blocks_hint.max(self.wear.len()) as u64,
                retired: self.retired,
                gc_erases: self.gc_erases,
                swl_erases: self.swl_erases,
                ext_erases: self.ext_erases,
                host_pages: self.host_pages,
                bet_ecnt: self.bet_ecnt,
                bet_fcnt: self.bet_fcnt,
            },
            summary,
            cache,
        )
    }
}

impl Sink for HealthMonitor {
    fn event(&mut self, event: Event) {
        match event {
            Event::Meta { blocks, .. } => {
                self.blocks_hint = self.blocks_hint.max(blocks as usize);
            }
            Event::Endurance { limit } => {
                // The stream is authoritative: forecasts should use the
                // rating of the device that actually emitted the log.
                self.config.endurance = limit;
            }
            Event::HostWrite { .. } => self.host_pages += 1,
            Event::Erase { block, wear, cause } => {
                let idx = block as usize;
                if self.wear.len() <= idx {
                    self.wear.resize(idx + 1, 0);
                }
                self.wear[idx] = wear;
                match cause {
                    Cause::Gc => self.gc_erases += 1,
                    Cause::Swl => self.swl_erases += 1,
                    Cause::External => self.ext_erases += 1,
                }
            }
            Event::Retire { .. } => self.retired += 1,
            Event::SwlInvoke { ecnt, fcnt, .. } => {
                self.bet_ecnt = ecnt;
                self.bet_fcnt = fcnt;
                if fcnt > 0 {
                    self.observe_unevenness(ecnt as f64 / fcnt as f64);
                }
            }
            Event::IntervalReset { .. } => {
                self.bet_ecnt = 0;
                self.bet_fcnt = 0;
                let summary = self.replay_summary();
                self.advance(self.host_pages, summary.max as f64, summary.mean);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_recovers_constant_rate_regardless_of_chunking() {
        let mut one = WearRateEstimator::new(1000.0);
        one.observe(50.0, 500.0);
        let mut many = WearRateEstimator::new(1000.0);
        for _ in 0..10 {
            many.observe(5.0, 50.0);
        }
        assert!((one.rate() - 0.1).abs() < 1e-12);
        assert!((one.rate() - many.rate()).abs() < 1e-9);
    }

    #[test]
    fn estimator_tracks_rate_changes() {
        let mut est = WearRateEstimator::new(100.0);
        est.observe(10.0, 1000.0); // rate 0.01, long span
        est.observe(500.0, 1000.0); // rate 0.5 for many taus
        assert!(est.rate() > 0.4, "rate {} should track the recent regime", est.rate());
    }

    #[test]
    fn zero_rate_forecast_is_unbounded() {
        let wear = WearSummary::from_counts([0, 0, 0, 0]);
        let f = forecast(100, &wear, 0.0, 0.0);
        assert_eq!(f, Forecast::default());
    }

    #[test]
    fn exhausted_block_forecasts_zero() {
        let wear = WearSummary::from_counts([100, 3]);
        let f = forecast(100, &wear, 0.5, 0.1);
        assert_eq!(f.central, Some(0));
    }

    #[test]
    fn forecast_band_brackets_central() {
        let wear = WearSummary::from_counts((0u64..64).map(|i| 10 + i % 5).collect::<Vec<_>>());
        let f = forecast(100, &wear, 0.02, 0.015);
        let (lo, mid, hi) = (
            f.earliest.unwrap(),
            f.central.unwrap(),
            f.latest.unwrap(),
        );
        assert!(lo <= mid && mid <= hi, "band {lo}..{mid}..{hi} out of order");
    }

    #[test]
    fn runtime_sample_round_trips_events() {
        let rt = HealthRuntime::new(8, HealthConfig::new(100));
        rt.observe_event(
            4,
            &Event::Erase {
                block: 1,
                wear: 7,
                cause: Cause::Gc,
            },
        );
        rt.observe_event(0, &Event::Retire { block: 2 });
        rt.observe_event(0, &Event::Program { block: 0, page: 0 });
        rt.add_host_pages(12);
        rt.set_bet(30, 10);
        let s = rt.sample();
        assert_eq!(s.wear[5], 7);
        assert_eq!(s.retired, 1);
        assert_eq!(s.gc_erases, 1);
        assert_eq!(s.host_pages, 12);
        assert_eq!((s.bet_ecnt, s.bet_fcnt), (30, 10));
        assert_eq!(s.wear_summary().max, 7);
    }

    #[test]
    fn out_of_range_block_is_ignored() {
        let rt = HealthRuntime::new(4, HealthConfig::new(100));
        rt.observe_event(
            2,
            &Event::Erase {
                block: 9,
                wear: 3,
                cause: Cause::Swl,
            },
        );
        let s = rt.sample();
        assert!(s.wear.iter().all(|&w| w == 0));
        assert_eq!(s.swl_erases, 1);
    }

    fn sample(wear: Vec<u64>, pages: u64) -> HealthSample {
        HealthSample {
            wear,
            retired: 0,
            gc_erases: 0,
            swl_erases: 0,
            ext_erases: 0,
            host_pages: pages,
            bet_ecnt: 0,
            bet_fcnt: 0,
        }
    }

    #[test]
    fn monitor_forecasts_linear_wear_exactly() {
        let mut mon = HealthMonitor::new(HealthConfig::new(100).with_tau_pages(1e9));
        // Max wear advances 1 per 100 pages; at wear 20 the block has 80
        // levels left = 8000 pages.
        let mut report = None;
        for step in 1..=20u64 {
            let s = sample(vec![step, step / 2], step * 100);
            report = Some(mon.report_on(&s, None));
        }
        let report = report.unwrap();
        assert!((report.tail_rate - 0.01).abs() < 1e-9);
        let central = report.forecast.central.unwrap();
        assert!(
            (central as i64 - 8000).abs() <= 1,
            "central {central} should be ~8000"
        );
        assert_eq!(report.state, HealthState::Good);
    }

    #[test]
    fn states_degrade_with_life_used() {
        let config = HealthConfig::new(100).with_tau_pages(1e9);
        let mut mon = HealthMonitor::new(config);
        let good = mon.report_on(&sample(vec![10, 10], 100), None);
        assert_eq!(good.state, HealthState::Good);
        let warn = mon.report_on(&sample(vec![75, 10], 200), None);
        assert_eq!(warn.state, HealthState::Warn);
        let critical = mon.report_on(&sample(vec![95, 10], 300), None);
        assert_eq!(critical.state, HealthState::Critical);
        assert!(critical.life_used >= 0.9);
    }

    #[test]
    fn retirement_degrades_state() {
        let mut mon = HealthMonitor::new(HealthConfig::new(1000));
        let mut s = sample(vec![1; 400], 100);
        s.retired = 1; // 0.25% < the 1% critical fraction, but any retire warns
        assert_eq!(mon.report_on(&s, None).state, HealthState::Warn);
        s.retired = 4; // 1% ≥ the critical fraction
        assert_eq!(mon.report_on(&s, None).state, HealthState::Critical);
    }

    #[test]
    fn replay_monitor_matches_live_deltas() {
        // Feed the same history as events and as samples; rates must agree.
        let config = HealthConfig::new(64).with_tau_pages(500.0);
        let mut replay = HealthMonitor::new(config);
        let mut live = HealthMonitor::new(config);
        replay.event(Event::Meta {
            version: crate::SCHEMA_VERSION,
            blocks: 4,
            pages_per_block: 8,
        });
        let mut live_wear = vec![0u64; 4];
        let mut pages = 0u64;
        for round in 1..=6u64 {
            for _ in 0..50 {
                replay.event(Event::HostWrite { lba: 0 });
                pages += 1;
            }
            let block = (round % 4) as usize;
            live_wear[block] += round;
            replay.event(Event::Erase {
                block: block as u32,
                wear: live_wear[block],
                cause: Cause::Gc,
            });
            replay.event(Event::IntervalReset {
                interval: round,
                ecnt: 0,
                fcnt: 0,
            });
            let mut s = sample(live_wear.clone(), pages);
            s.gc_erases = round;
            live.report_on(&s, None);
        }
        let a = replay.report(None);
        let b = live.report(None);
        assert!((a.tail_rate - b.tail_rate).abs() < 1e-9);
        assert!((a.mean_rate - b.mean_rate).abs() < 1e-9);
    }

    #[test]
    fn endurance_header_enables_forecasting() {
        let mut mon = HealthMonitor::new(HealthConfig::new(0));
        mon.event(Event::Meta {
            version: crate::SCHEMA_VERSION,
            blocks: 2,
            pages_per_block: 4,
        });
        mon.event(Event::Endurance { limit: 50 });
        for _ in 0..100 {
            mon.event(Event::HostWrite { lba: 0 });
        }
        mon.event(Event::Erase {
            block: 0,
            wear: 5,
            cause: Cause::Gc,
        });
        let report = mon.report(None);
        assert_eq!(report.endurance, 50);
        assert!(report.forecast.central.is_some());
        assert!((report.life_used - 0.1).abs() < 1e-12);
    }
}
