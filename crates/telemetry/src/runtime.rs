//! Wall-clock runtime metrics for the threaded execution engine.
//!
//! The virtual-time telemetry in the rest of this crate explains *device*
//! time; this module explains *host* time: where each worker thread's
//! wall-clock seconds went while the engine ran. The accounting follows the
//! worker loop's three states, measured from monotonic timestamps around
//! each transition:
//!
//! - **busy** — executing lane commands (flash sub-requests, SWL steps);
//! - **starved** — blocked on the *pop* side, waiting for the front-end to
//!   send the next command (the queue was empty);
//! - **backpressured** — blocked on the *push* side, waiting for queue
//!   capacity (completions piling up faster than the front-end drains them).
//!
//! Whatever is left of a worker's wall time is **idle** overhead (loop
//! bookkeeping, scheduler preemption) and is derived, never measured.
//!
//! Everything here is a plain atomic counter updated with relaxed ordering:
//! the numbers are monotone sums, readable at any instant by an observer
//! thread without stopping the workers ([`EngineSnapshot`]). None of it
//! feeds back into the simulation, so enabling metrics cannot perturb the
//! bit-exact virtual-time results — the `engine_oracle` suite pins that.
//!
//! The final [`EngineMetricsReport`] adds wall-clock latency histograms
//! ([`LatencyHistogram`], the same mergeable type the virtual-time report
//! uses): per-worker command-execution histograms merged into one, plus the
//! front-end's submit-to-finalize completion histograms per op kind.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::LatencyHistogram;

/// Atomic busy/starved/backpressure accounting for one worker thread.
///
/// Workers add to these counters with [`Ordering::Relaxed`]; observers read
/// a consistent-enough [`WorkerSample`] at any time (the fields are
/// independent monotone sums, so a torn multi-field read can only lag, never
/// invent time).
#[derive(Debug, Default)]
pub struct WorkerRuntime {
    busy_ns: AtomicU64,
    starved_ns: AtomicU64,
    backpressure_ns: AtomicU64,
    wall_ns: AtomicU64,
    commands: AtomicU64,
    pages: AtomicU64,
}

impl WorkerRuntime {
    /// Adds command-execution time and the command/page tally it covered.
    /// Workers batch several commands into one call (see the engine's
    /// flush cadence), so all three deltas are explicit.
    pub fn add_busy(&self, ns: u64, commands: u64, pages: u64) {
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
        self.commands.fetch_add(commands, Ordering::Relaxed);
        self.pages.fetch_add(pages, Ordering::Relaxed);
    }

    /// Adds pop-side wait time (no command was available).
    pub fn add_starved(&self, ns: u64) {
        self.starved_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Adds push-side wait time (the completion queue was full).
    pub fn add_backpressure(&self, ns: u64) {
        self.backpressure_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records the worker's total wall time, set once when it exits.
    pub fn set_wall(&self, ns: u64) {
        self.wall_ns.store(ns, Ordering::Relaxed);
    }

    /// Reads the counters into a plain sample. For a still-running worker
    /// (`wall_ns` not yet set) the caller's `elapsed_ns` stands in as the
    /// wall-time denominator.
    pub fn sample(&self, elapsed_ns: u64) -> WorkerSample {
        let wall = self.wall_ns.load(Ordering::Relaxed);
        WorkerSample {
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            starved_ns: self.starved_ns.load(Ordering::Relaxed),
            backpressure_ns: self.backpressure_ns.load(Ordering::Relaxed),
            wall_ns: if wall == 0 { elapsed_ns } else { wall },
            commands: self.commands.load(Ordering::Relaxed),
            pages: self.pages.load(Ordering::Relaxed),
        }
    }
}

/// Atomic per-lane (per-channel) wall-clock execution tallies.
#[derive(Debug, Default)]
pub struct LaneRuntime {
    busy_wall_ns: AtomicU64,
    commands: AtomicU64,
    pages: AtomicU64,
}

impl LaneRuntime {
    /// Adds a batch of executed commands' wall time and page count.
    pub fn add_commands(&self, ns: u64, commands: u64, pages: u64) {
        self.busy_wall_ns.fetch_add(ns, Ordering::Relaxed);
        self.commands.fetch_add(commands, Ordering::Relaxed);
        self.pages.fetch_add(pages, Ordering::Relaxed);
    }

    /// Reads the counters into a plain sample.
    pub fn sample(&self) -> LaneSample {
        LaneSample {
            busy_wall_ns: self.busy_wall_ns.load(Ordering::Relaxed),
            commands: self.commands.load(Ordering::Relaxed),
            pages: self.pages.load(Ordering::Relaxed),
        }
    }
}

/// The shared atomics block for one engine run: per-worker and per-lane
/// counters plus front-end op progress, all readable mid-run.
#[derive(Debug)]
pub struct EngineRuntime {
    started: Instant,
    workers: Vec<WorkerRuntime>,
    lanes: Vec<LaneRuntime>,
    ops_submitted: AtomicU64,
    ops_completed: AtomicU64,
    host_backpressure_ns: AtomicU64,
}

impl EngineRuntime {
    /// A zeroed runtime for `workers` threads over `lanes` channels,
    /// starting its wall clock now.
    pub fn new(workers: usize, lanes: usize) -> Self {
        Self {
            started: Instant::now(),
            workers: (0..workers).map(|_| WorkerRuntime::default()).collect(),
            lanes: (0..lanes).map(|_| LaneRuntime::default()).collect(),
            ops_submitted: AtomicU64::new(0),
            ops_completed: AtomicU64::new(0),
            host_backpressure_ns: AtomicU64::new(0),
        }
    }

    /// Wall nanoseconds since this runtime was created.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The per-worker counter block for worker `w`.
    pub fn worker(&self, w: usize) -> &WorkerRuntime {
        &self.workers[w]
    }

    /// The per-lane counter block for channel `lane`.
    pub fn lane(&self, lane: usize) -> &LaneRuntime {
        &self.lanes[lane]
    }

    /// Counts one host op accepted by the front-end.
    pub fn op_submitted(&self) {
        self.ops_submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one host op finalized in submission order.
    pub fn op_completed(&self) {
        self.ops_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds time the *front-end* spent blocked because the in-flight window
    /// was at queue depth (the submit-side mirror of worker starvation).
    pub fn add_host_backpressure(&self, ns: u64) {
        self.host_backpressure_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Reads every counter into an [`EngineSnapshot`]. Queue gauges are
    /// owned by the engine's queues, so the caller supplies them.
    pub fn snapshot(
        &self,
        command_queues: Vec<QueueSample>,
        completion_queue: QueueSample,
    ) -> EngineSnapshot {
        let elapsed_ns = self.elapsed_ns();
        EngineSnapshot {
            elapsed_ns,
            ops_submitted: self.ops_submitted.load(Ordering::Relaxed),
            ops_completed: self.ops_completed.load(Ordering::Relaxed),
            host_backpressure_ns: self.host_backpressure_ns.load(Ordering::Relaxed),
            workers: self.workers.iter().map(|w| w.sample(elapsed_ns)).collect(),
            lanes: self.lanes.iter().map(LaneRuntime::sample).collect(),
            command_queues,
            completion_queue,
        }
    }
}

/// One worker's accounting at a point in time (plain numbers; see
/// [`WorkerRuntime`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSample {
    /// Wall time spent executing lane commands.
    pub busy_ns: u64,
    /// Wall time blocked waiting for the next command (pop side).
    pub starved_ns: u64,
    /// Wall time blocked pushing completions (push side).
    pub backpressure_ns: u64,
    /// Total wall time: the worker's lifetime once it exited, the run's
    /// elapsed time while it is still running.
    pub wall_ns: u64,
    /// Lane commands executed.
    pub commands: u64,
    /// Flash pages served by those commands.
    pub pages: u64,
}

impl WorkerSample {
    fn frac(&self, part: u64) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            part as f64 / self.wall_ns as f64
        }
    }

    /// Fraction of wall time spent executing commands.
    pub fn busy_frac(&self) -> f64 {
        self.frac(self.busy_ns)
    }

    /// Fraction of wall time starved on the command queue.
    pub fn starved_frac(&self) -> f64 {
        self.frac(self.starved_ns)
    }

    /// Fraction of wall time backpressured on the completion queue.
    pub fn backpressure_frac(&self) -> f64 {
        self.frac(self.backpressure_ns)
    }

    /// Derived remainder: wall time in none of the measured states.
    pub fn idle_frac(&self) -> f64 {
        (1.0 - self.busy_frac() - self.starved_frac() - self.backpressure_frac()).max(0.0)
    }
}

/// One lane's wall-clock execution tallies at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneSample {
    /// Wall time some worker spent executing this lane's commands.
    pub busy_wall_ns: u64,
    /// Commands executed on this lane.
    pub commands: u64,
    /// Flash pages served on this lane.
    pub pages: u64,
}

/// Occupancy gauges for one bounded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueSample {
    /// Items queued at sampling time.
    pub len: usize,
    /// Highest occupancy ever observed (monotone over a run).
    pub high_water: usize,
    /// Bound the queue blocks at.
    pub capacity: usize,
}

/// A consistent-enough point-in-time view of a running engine: worker and
/// lane accounting plus queue gauges. Produced by
/// [`EngineRuntime::snapshot`]; readable mid-run without stopping workers.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot {
    /// Wall nanoseconds since the engine was built.
    pub elapsed_ns: u64,
    /// Host ops accepted by the front-end.
    pub ops_submitted: u64,
    /// Host ops finalized in submission order.
    pub ops_completed: u64,
    /// Wall time the front-end spent blocked with the in-flight window full.
    pub host_backpressure_ns: u64,
    /// Per-worker accounting, worker-index order.
    pub workers: Vec<WorkerSample>,
    /// Per-lane accounting, channel order.
    pub lanes: Vec<LaneSample>,
    /// Per-worker command queue gauges, worker-index order.
    pub command_queues: Vec<QueueSample>,
    /// The shared completion queue's gauges.
    pub completion_queue: QueueSample,
}

impl EngineSnapshot {
    /// Aggregate busy fraction: total worker busy time over total worker
    /// wall time (0 when no wall time has accumulated).
    pub fn busy_frac(&self) -> f64 {
        let busy: u64 = self.workers.iter().map(|w| w.busy_ns).sum();
        let wall: u64 = self.workers.iter().map(|w| w.wall_ns).sum();
        if wall == 0 {
            0.0
        } else {
            busy as f64 / wall as f64
        }
    }

    /// Aggregate pop-side starvation fraction across workers.
    pub fn starved_frac(&self) -> f64 {
        let starved: u64 = self.workers.iter().map(|w| w.starved_ns).sum();
        let wall: u64 = self.workers.iter().map(|w| w.wall_ns).sum();
        if wall == 0 {
            0.0
        } else {
            starved as f64 / wall as f64
        }
    }

    /// Aggregate push-side backpressure fraction across workers.
    pub fn backpressure_frac(&self) -> f64 {
        let bp: u64 = self.workers.iter().map(|w| w.backpressure_ns).sum();
        let wall: u64 = self.workers.iter().map(|w| w.wall_ns).sum();
        if wall == 0 {
            0.0
        } else {
            bp as f64 / wall as f64
        }
    }

    /// Highest command-queue occupancy across all workers.
    pub fn command_high_water(&self) -> usize {
        self.command_queues
            .iter()
            .map(|q| q.high_water)
            .max()
            .unwrap_or(0)
    }
}

/// Everything the metrics layer produced for one finished engine run: the
/// final [`EngineSnapshot`] plus the wall-clock latency histograms that
/// cannot be kept in atomics.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineMetricsReport {
    /// The counters at the instant the last worker exited.
    pub snapshot: EngineSnapshot,
    /// Per-worker command-execution wall latency, worker-index order.
    pub worker_cmd_latency: Vec<LatencyHistogram>,
    /// The merge of every worker's command histogram (identical to
    /// recording all commands into one stream — see the merge property
    /// tests).
    pub cmd_latency: LatencyHistogram,
    /// Submit-to-finalize wall latency of host write ops.
    pub op_write_wall: LatencyHistogram,
    /// Submit-to-finalize wall latency of host read ops.
    pub op_read_wall: LatencyHistogram,
}

impl EngineMetricsReport {
    /// Assembles the report, deriving the merged command histogram.
    pub fn new(
        snapshot: EngineSnapshot,
        worker_cmd_latency: Vec<LatencyHistogram>,
        op_write_wall: LatencyHistogram,
        op_read_wall: LatencyHistogram,
    ) -> Self {
        let mut cmd_latency = LatencyHistogram::new();
        for worker in &worker_cmd_latency {
            cmd_latency.merge(worker);
        }
        Self {
            snapshot,
            worker_cmd_latency,
            cmd_latency,
            op_write_wall,
            op_read_wall,
        }
    }
}

/// Atomic counters for the service layer's RAM write cache, shaped like
/// the other runtime blocks in this module: relaxed monotone sums a cache
/// owner bumps on its thread while observers ([`CacheRuntime::sample`])
/// read a consistent-enough [`CacheSample`] at any time. The one gauge,
/// `dirty`, is stored (not summed) so a torn read can only lag.
#[derive(Debug)]
pub struct CacheRuntime {
    write_hits: AtomicU64,
    read_hits: AtomicU64,
    admitted: AtomicU64,
    write_through: AtomicU64,
    flushed_pages: AtomicU64,
    flush_batches: AtomicU64,
    evicted: AtomicU64,
    trimmed: AtomicU64,
    dirty: AtomicU64,
    capacity: u64,
}

impl CacheRuntime {
    /// A zeroed block for a cache bounded at `capacity` entries.
    pub fn new(capacity: u64) -> Self {
        Self {
            write_hits: AtomicU64::new(0),
            read_hits: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            write_through: AtomicU64::new(0),
            flushed_pages: AtomicU64::new(0),
            flush_batches: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            trimmed: AtomicU64::new(0),
            dirty: AtomicU64::new(0),
            capacity,
        }
    }

    /// Counts one write absorbed by an existing dirty entry (no flash
    /// traffic at all — the hot-rewrite win the cache exists for).
    pub fn write_hit(&self) {
        self.write_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one read served from a dirty entry.
    pub fn read_hit(&self) {
        self.read_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one write admitted as a new dirty entry.
    pub fn admit(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one write the admission filter sent straight to flash.
    pub fn pass_through(&self) {
        self.write_through.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one flush-back batch of `pages` dirty entries; `evicted`
    /// marks batches forced by capacity rather than the sync watermark.
    pub fn flush_batch(&self, pages: u64, evicted: bool) {
        self.flushed_pages.fetch_add(pages, Ordering::Relaxed);
        self.flush_batches.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.evicted.fetch_add(pages, Ordering::Relaxed);
        }
    }

    /// Counts one dirty entry dropped by a trim (its data was never
    /// acknowledged as durable, so dropping it is legal).
    pub fn trim_drop(&self) {
        self.trimmed.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the current dirty-entry count.
    pub fn set_dirty(&self, dirty: u64) {
        self.dirty.store(dirty, Ordering::Relaxed);
    }

    /// Reads every counter into a plain sample.
    pub fn sample(&self) -> CacheSample {
        CacheSample {
            write_hits: self.write_hits.load(Ordering::Relaxed),
            read_hits: self.read_hits.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            write_through: self.write_through.load(Ordering::Relaxed),
            flushed_pages: self.flushed_pages.load(Ordering::Relaxed),
            flush_batches: self.flush_batches.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
            trimmed: self.trimmed.load(Ordering::Relaxed),
            dirty: self.dirty.load(Ordering::Relaxed),
            capacity: self.capacity,
        }
    }
}

/// Point-in-time view of a [`CacheRuntime`] (plain numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSample {
    /// Writes absorbed in place by an existing dirty entry.
    pub write_hits: u64,
    /// Reads served from a dirty entry.
    pub read_hits: u64,
    /// Writes admitted as new dirty entries.
    pub admitted: u64,
    /// Writes the admission filter passed straight to flash.
    pub write_through: u64,
    /// Dirty entries flushed back to flash (all causes).
    pub flushed_pages: u64,
    /// Flush-back batches issued (watermark, capacity, or explicit flush).
    pub flush_batches: u64,
    /// Dirty entries flushed specifically to make room (capacity pressure).
    pub evicted: u64,
    /// Dirty entries dropped by trims before ever reaching flash.
    pub trimmed: u64,
    /// Dirty entries held right now.
    pub dirty: u64,
    /// Bound on dirty entries.
    pub capacity: u64,
}

impl CacheSample {
    /// Cached pages written per host write page: the fraction of write
    /// traffic the flash array never saw. `write_hits / (write_hits +
    /// admitted + write_through)`; 0 when nothing was written.
    pub fn write_hit_rate(&self) -> f64 {
        let total = self.write_hits + self.admitted + self.write_through;
        if total == 0 {
            0.0
        } else {
            self.write_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_sample_reads_back_counters() {
        let cache = CacheRuntime::new(64);
        cache.write_hit();
        cache.write_hit();
        cache.admit();
        cache.pass_through();
        cache.read_hit();
        cache.flush_batch(8, false);
        cache.flush_batch(2, true);
        cache.trim_drop();
        cache.set_dirty(5);
        let sample = cache.sample();
        assert_eq!(sample.write_hits, 2);
        assert_eq!(sample.admitted, 1);
        assert_eq!(sample.write_through, 1);
        assert_eq!(sample.read_hits, 1);
        assert_eq!(sample.flushed_pages, 10);
        assert_eq!(sample.flush_batches, 2);
        assert_eq!(sample.evicted, 2);
        assert_eq!(sample.trimmed, 1);
        assert_eq!(sample.dirty, 5);
        assert_eq!(sample.capacity, 64);
        assert!((sample.write_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_cache_hit_rate_is_zero() {
        assert_eq!(CacheRuntime::new(8).sample().write_hit_rate(), 0.0);
    }

    #[test]
    fn worker_fractions_partition_wall_time() {
        let runtime = WorkerRuntime::default();
        runtime.add_busy(600, 1, 4);
        runtime.add_starved(250);
        runtime.add_backpressure(50);
        runtime.set_wall(1_000);
        let sample = runtime.sample(0);
        assert_eq!(sample.busy_ns, 600);
        assert_eq!(sample.commands, 1);
        assert_eq!(sample.pages, 4);
        assert!((sample.busy_frac() - 0.6).abs() < 1e-12);
        assert!((sample.starved_frac() - 0.25).abs() < 1e-12);
        assert!((sample.backpressure_frac() - 0.05).abs() < 1e-12);
        assert!((sample.idle_frac() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn running_worker_uses_elapsed_as_denominator() {
        let runtime = WorkerRuntime::default();
        runtime.add_busy(500, 1, 1);
        let sample = runtime.sample(2_000);
        assert_eq!(sample.wall_ns, 2_000);
        assert!((sample.busy_frac() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn snapshot_aggregates_across_workers() {
        let runtime = EngineRuntime::new(2, 4);
        runtime.worker(0).add_busy(800, 1, 8);
        runtime.worker(0).set_wall(1_000);
        runtime.worker(1).add_busy(200, 1, 2);
        runtime.worker(1).add_starved(700);
        runtime.worker(1).set_wall(1_000);
        runtime.lane(3).add_commands(123, 1, 2);
        runtime.op_submitted();
        runtime.op_completed();
        let snapshot = runtime.snapshot(
            vec![
                QueueSample {
                    len: 0,
                    high_water: 3,
                    capacity: 8,
                },
                QueueSample {
                    len: 1,
                    high_water: 7,
                    capacity: 8,
                },
            ],
            QueueSample {
                len: 0,
                high_water: 2,
                capacity: 16,
            },
        );
        assert_eq!(snapshot.ops_submitted, 1);
        assert_eq!(snapshot.ops_completed, 1);
        assert!((snapshot.busy_frac() - 0.5).abs() < 1e-12);
        assert!((snapshot.starved_frac() - 0.35).abs() < 1e-12);
        assert_eq!(snapshot.command_high_water(), 7);
        assert_eq!(snapshot.lanes[3].pages, 2);
    }

    #[test]
    fn report_merges_worker_histograms() {
        let mut a = LatencyHistogram::new();
        a.record(100);
        a.record(200);
        let mut b = LatencyHistogram::new();
        b.record(50_000);
        let runtime = EngineRuntime::new(2, 1);
        let snapshot = runtime.snapshot(
            Vec::new(),
            QueueSample {
                len: 0,
                high_water: 0,
                capacity: 1,
            },
        );
        let report = EngineMetricsReport::new(
            snapshot,
            vec![a, b],
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        );
        assert_eq!(report.cmd_latency.count(), 3);
        assert_eq!(report.cmd_latency.total_ns(), 50_300);
    }

    #[test]
    fn empty_snapshot_fractions_are_zero() {
        let runtime = EngineRuntime::new(0, 0);
        let snapshot = runtime.snapshot(
            Vec::new(),
            QueueSample {
                len: 0,
                high_water: 0,
                capacity: 1,
            },
        );
        assert_eq!(snapshot.busy_frac(), 0.0);
        assert_eq!(snapshot.starved_frac(), 0.0);
        assert_eq!(snapshot.backpressure_frac(), 0.0);
        assert_eq!(snapshot.command_high_water(), 0);
    }
}
