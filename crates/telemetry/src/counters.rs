//! Shared attribution counters for overhead accounting.
//!
//! Both translation layers used to carry near-identical counter structs; this
//! superset replaces them (`ftl::FtlCounters`, `nftl::NftlCounters`, and
//! `flash_sim`'s `LayerCounters` are all re-exports of [`FlashCounters`]).
//! Fields that don't apply to a layer simply stay zero: the page-mapped FTL
//! never merges, the NFTL never trims.

/// What a translation layer did, split by cause — the raw material for the
/// paper's Figures 6 and 7 (extra erases / extra live-page copyings due to
/// SWL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlashCounters {
    /// Host page writes accepted.
    pub host_writes: u64,
    /// Host page reads served.
    pub host_reads: u64,
    /// Host trim (discard) commands applied (page-mapped FTL only).
    pub trims: u64,
    /// Garbage-collection victim selections.
    pub gc_collections: u64,
    /// Merges forced by a full replacement block (NFTL only).
    pub full_merges: u64,
    /// Merges run by the garbage collector for free space (NFTL only).
    pub gc_merges: u64,
    /// Merges (or primary relocations) run on behalf of the SW Leveler
    /// (NFTL only).
    pub swl_merges: u64,
    /// Block erases performed by regular operation (GC, full merges).
    pub gc_erases: u64,
    /// Block erases performed on behalf of the SW Leveler.
    pub swl_erases: u64,
    /// Live pages copied by regular operation.
    pub gc_live_copies: u64,
    /// Live pages copied on behalf of the SW Leveler.
    pub swl_live_copies: u64,
    /// Blocks retired after exceeding their endurance (bad-block
    /// management under `nand::WearPolicy::FailWornBlocks`).
    pub retired_blocks: u64,
}

impl FlashCounters {
    /// All block erases, regardless of cause.
    pub fn total_erases(&self) -> u64 {
        self.gc_erases + self.swl_erases
    }

    /// All live-page copies, regardless of cause.
    pub fn total_live_copies(&self) -> u64 {
        self.gc_live_copies + self.swl_live_copies
    }

    /// Average live pages copied per regular GC erase — the paper's `L`.
    /// Returns 0.0 (not NaN) when no GC erase has happened yet.
    pub fn avg_live_copies_per_gc_erase(&self) -> f64 {
        if self.gc_erases == 0 {
            0.0
        } else {
            self.gc_live_copies as f64 / self.gc_erases as f64
        }
    }

    /// Write amplification: physical page programs per host write.
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            0.0
        } else {
            (self.host_writes + self.total_live_copies()) as f64 / self.host_writes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_causes() {
        let c = FlashCounters {
            gc_erases: 10,
            swl_erases: 3,
            gc_live_copies: 40,
            swl_live_copies: 8,
            ..FlashCounters::default()
        };
        assert_eq!(c.total_erases(), 13);
        assert_eq!(c.total_live_copies(), 48);
        assert_eq!(c.avg_live_copies_per_gc_erase(), 4.0);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let c = FlashCounters::default();
        assert_eq!(c.avg_live_copies_per_gc_erase(), 0.0);
        assert_eq!(c.write_amplification(), 0.0);
    }

    #[test]
    fn write_amplification_counts_copies() {
        let c = FlashCounters {
            host_writes: 100,
            gc_live_copies: 50,
            ..FlashCounters::default()
        };
        assert_eq!(c.write_amplification(), 1.5);
    }
}
