//! Causal spans: per-host-op latency attribution.
//!
//! Schema v3 adds [`Event::SpanBegin`]/[`Event::SpanEnd`] pairs stamped with
//! the device's cumulative busy time. Every host operation opens a *root*
//! span; GC episodes, SWL-Procedure passes, and NFTL merges nest underneath
//! it. Because the stamps come from the same latency model the simulator's
//! per-op histogram uses, replaying the spans reproduces each op's total
//! device time bit-exactly and splits it across causes with nothing left
//! over:
//!
//! ```text
//! total = end − begin = host + gc + swl + merge        (exact, u64)
//! ```
//!
//! *Self time* — a span's total minus the totals of its direct children —
//! is charged to the cause of the span's own [`SpanKind`]. Nested work is
//! therefore charged to the innermost enclosing span: a merge run by SWL
//! counts as `merge`, the BET bookkeeping around it as `swl`.
//!
//! Three consumers live here:
//!
//! - [`SpanTracker`] — emission side; allocates ids and maintains the open
//!   stack inside an instrumented translation layer.
//! - [`SpanReplayer`] — replay side; folds a stream of events into one
//!   [`OpBreakdown`] per completed root span.
//! - [`SpanCheck`] — structural validation (balance, nesting, bounds) used
//!   by `swlstat --check`.

use crate::{Event, SpanKind};

/// The four attribution buckets device time is charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanCause {
    /// The host operation's own programs/reads.
    Host,
    /// Garbage collection triggered under the op.
    Gc,
    /// An SWL-Procedure pass triggered under the op.
    Swl,
    /// NFTL merge work (charged to merge even when SWL drove it).
    Merge,
}

impl SpanCause {
    /// All causes, in [`Self::index`] order.
    pub const ALL: [SpanCause; 4] = [
        SpanCause::Host,
        SpanCause::Gc,
        SpanCause::Swl,
        SpanCause::Merge,
    ];

    /// Position of this cause in per-cause arrays.
    pub fn index(self) -> usize {
        match self {
            SpanCause::Host => 0,
            SpanCause::Gc => 1,
            SpanCause::Swl => 2,
            SpanCause::Merge => 3,
        }
    }

    /// Short stable token (`host`/`gc`/`swl`/`merge`) for reports.
    pub fn token(self) -> &'static str {
        match self {
            SpanCause::Host => "host",
            SpanCause::Gc => "gc",
            SpanCause::Swl => "swl",
            SpanCause::Merge => "merge",
        }
    }
}

/// Emission-side span bookkeeping for an instrumented translation layer.
///
/// Ids are allocated from 1 (0 is the "no parent"/disabled sentinel), so a
/// layer whose sink is disabled can use id 0 to skip emission without
/// branching on the sink type twice.
#[derive(Debug, Clone, Default)]
pub struct SpanTracker {
    next_id: u64,
    stack: Vec<u64>,
}

impl SpanTracker {
    /// A tracker with no open spans.
    pub fn new() -> Self {
        Self {
            next_id: 1,
            stack: Vec::new(),
        }
    }

    /// Opens a span; returns `(id, parent_id)` where `parent_id` is 0 for a
    /// root span.
    pub fn begin(&mut self) -> (u64, u64) {
        if self.next_id == 0 {
            self.next_id = 1; // Default::default() starts at 0.
        }
        let id = self.next_id;
        self.next_id += 1;
        let parent = self.stack.last().copied().unwrap_or(0);
        self.stack.push(id);
        (id, parent)
    }

    /// Closes span `id`, calling `emit` for it and — first — for every
    /// descendant an error path left open, in innermost-to-outermost order.
    ///
    /// This keeps the event stream balanced even when `?` unwinds through a
    /// GC or SWL call without reaching its own `span_end`. Unknown ids are
    /// ignored.
    pub fn end(&mut self, id: u64, mut emit: impl FnMut(u64)) {
        let Some(pos) = self.stack.iter().rposition(|&open| open == id) else {
            return;
        };
        while self.stack.len() > pos {
            let popped = self.stack.pop().expect("len > pos implies non-empty");
            emit(popped);
        }
    }

    /// Id of the innermost open span (0 when none).
    pub fn current(&self) -> u64 {
        self.stack.last().copied().unwrap_or(0)
    }

    /// Number of open spans.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

/// Where one completed host operation's device time went.
///
/// Produced by [`SpanReplayer`] when a root span closes. The invariant the
/// span layer exists for: `cause_ns` sums to `total_ns()` exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpBreakdown {
    /// Root span id.
    pub id: u64,
    /// Root span kind (a host operation).
    pub kind: SpanKind,
    /// Device busy time when the op entered the translation layer.
    pub begin_ns: u64,
    /// Device busy time when the op returned.
    pub end_ns: u64,
    /// Device time per cause, indexed by [`SpanCause::index`].
    pub cause_ns: [u64; 4],
    /// Page programs issued anywhere under the op (host + relocation), the
    /// numerator of per-op write amplification.
    pub programs: u64,
}

impl OpBreakdown {
    /// Total device time the op spent in the translation layer.
    pub fn total_ns(&self) -> u64 {
        self.end_ns - self.begin_ns
    }

    /// Device time for one cause.
    pub fn ns(&self, cause: SpanCause) -> u64 {
        self.cause_ns[cause.index()]
    }

    /// Device time charged to anything other than the host's own work.
    pub fn overhead_ns(&self) -> u64 {
        self.total_ns() - self.ns(SpanCause::Host)
    }
}

/// Structural-health summary of a span stream.
///
/// All-zero counters mean the stream is well formed. Unclosed spans at end
/// of log are tolerated only when a power cut was observed — a cut
/// legitimately tears the stream mid-op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanCheck {
    /// `SpanEnd` events whose id matched no open span.
    pub orphan_ends: u64,
    /// `SpanEnd` events that closed a span out of LIFO order (descendants
    /// were force-closed to recover).
    pub id_mismatches: u64,
    /// Begins before their parent's begin, ends before their own begin, or
    /// child time exceeding the parent's total.
    pub bounds_violations: u64,
    /// Spans still open when the stream ended.
    pub unclosed: u64,
    /// Whether a [`Event::PowerCut`] appeared (excuses `unclosed`).
    pub power_cut_seen: bool,
}

impl SpanCheck {
    /// True when the stream is structurally sound (unclosed spans are
    /// allowed after a power cut).
    pub fn is_clean(&self) -> bool {
        self.orphan_ends == 0
            && self.id_mismatches == 0
            && self.bounds_violations == 0
            && (self.unclosed == 0 || self.power_cut_seen)
    }

    /// Human-readable error lines, empty when [`Self::is_clean`].
    pub fn errors(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.orphan_ends > 0 {
            out.push(format!(
                "{} span_end event(s) without a matching open span",
                self.orphan_ends
            ));
        }
        if self.id_mismatches > 0 {
            out.push(format!(
                "{} span_end event(s) closed spans out of LIFO order",
                self.id_mismatches
            ));
        }
        if self.bounds_violations > 0 {
            out.push(format!(
                "{} span(s) with begin/end stamps outside their parent's bounds",
                self.bounds_violations
            ));
        }
        if self.unclosed > 0 && !self.power_cut_seen {
            out.push(format!(
                "{} span(s) left open at end of log with no power cut to excuse them",
                self.unclosed
            ));
        }
        out
    }
}

#[derive(Debug, Clone)]
struct OpenSpan {
    id: u64,
    kind: SpanKind,
    begin_ns: u64,
    /// Sum of direct children's totals, subtracted to get self time.
    child_ns: u64,
}

/// Replays a span-instrumented event stream into per-op breakdowns.
///
/// Feed every event (span or not) to [`observe`](Self::observe); it returns
/// `Some(OpBreakdown)` whenever a root span completes. [`Event::Program`]
/// events between a root's begin and end are counted into
/// [`OpBreakdown::programs`].
#[derive(Debug, Clone, Default)]
pub struct SpanReplayer {
    stack: Vec<OpenSpan>,
    /// Per-cause accumulation for the current root op.
    cause_ns: [u64; 4],
    programs: u64,
    check: SpanCheck,
    /// Completed root spans, for the checker's books.
    completed_roots: u64,
}

impl SpanReplayer {
    /// A replayer with no open spans.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of root spans completed so far.
    pub fn completed_roots(&self) -> u64 {
        self.completed_roots
    }

    /// Number of currently open spans.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Structural findings so far; `unclosed` reflects the current depth,
    /// so call this after the last event for an end-of-log verdict.
    pub fn check(&self) -> SpanCheck {
        SpanCheck {
            unclosed: self.stack.len() as u64,
            ..self.check
        }
    }

    /// Folds one event in; returns a breakdown when a root span closes.
    pub fn observe(&mut self, event: &Event) -> Option<OpBreakdown> {
        match *event {
            Event::SpanBegin {
                id,
                parent,
                kind,
                at_ns,
            } => {
                if let Some(top) = self.stack.last() {
                    if parent != top.id || at_ns < top.begin_ns {
                        self.check.bounds_violations += 1;
                    }
                } else {
                    if parent != 0 {
                        self.check.bounds_violations += 1;
                    }
                    // A fresh root op: reset per-op accumulators.
                    self.cause_ns = [0; 4];
                    self.programs = 0;
                }
                self.stack.push(OpenSpan {
                    id,
                    kind,
                    begin_ns: at_ns,
                    child_ns: 0,
                });
                None
            }
            Event::SpanEnd { id, at_ns } => {
                let Some(pos) = self.stack.iter().rposition(|open| open.id == id) else {
                    self.check.orphan_ends += 1;
                    return None;
                };
                if pos + 1 != self.stack.len() {
                    // Out-of-order close: force-close the descendants at the
                    // same stamp so accounting still balances, and note it.
                    self.check.id_mismatches += 1;
                }
                let mut result = None;
                while self.stack.len() > pos {
                    let open = self.stack.pop().expect("len > pos implies non-empty");
                    if at_ns < open.begin_ns {
                        self.check.bounds_violations += 1;
                    }
                    let total = at_ns.saturating_sub(open.begin_ns);
                    if open.child_ns > total {
                        self.check.bounds_violations += 1;
                    }
                    let self_ns = total.saturating_sub(open.child_ns);
                    self.cause_ns[open.kind.cause().index()] += self_ns;
                    if let Some(parent) = self.stack.last_mut() {
                        parent.child_ns += total;
                    } else {
                        self.completed_roots += 1;
                        result = Some(OpBreakdown {
                            id: open.id,
                            kind: open.kind,
                            begin_ns: open.begin_ns,
                            end_ns: at_ns,
                            cause_ns: self.cause_ns,
                            programs: self.programs,
                        });
                    }
                }
                result
            }
            Event::Program { .. } => {
                if !self.stack.is_empty() {
                    self.programs += 1;
                }
                None
            }
            Event::PowerCut { .. } => {
                self.check.power_cut_seen = true;
                None
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(id: u64, parent: u64, kind: SpanKind, at_ns: u64) -> Event {
        Event::SpanBegin {
            id,
            parent,
            kind,
            at_ns,
        }
    }

    fn end(id: u64, at_ns: u64) -> Event {
        Event::SpanEnd { id, at_ns }
    }

    #[test]
    fn tracker_allocates_and_nests() {
        let mut t = SpanTracker::new();
        let (a, pa) = t.begin();
        assert_eq!((a, pa), (1, 0));
        let (b, pb) = t.begin();
        assert_eq!((b, pb), (2, 1));
        assert_eq!(t.current(), 2);
        let mut closed = Vec::new();
        t.end(b, |id| closed.push(id));
        t.end(a, |id| closed.push(id));
        assert_eq!(closed, [2, 1]);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn tracker_closes_orphaned_descendants() {
        let mut t = SpanTracker::new();
        let (root, _) = t.begin();
        let (_child, _) = t.begin();
        let (_grandchild, _) = t.begin();
        // Error path unwound straight to the root's close.
        let mut closed = Vec::new();
        t.end(root, |id| closed.push(id));
        assert_eq!(closed, [3, 2, 1]);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn tracker_ignores_unknown_ids() {
        let mut t = SpanTracker::new();
        let (a, _) = t.begin();
        t.end(99, |_| panic!("nothing should close"));
        assert_eq!(t.current(), a);
    }

    #[test]
    fn flat_op_is_all_host_time() {
        let mut r = SpanReplayer::new();
        assert!(r.observe(&begin(1, 0, SpanKind::HostWrite, 100)).is_none());
        let op = r.observe(&end(1, 700)).expect("root closed");
        assert_eq!(op.total_ns(), 600);
        assert_eq!(op.ns(SpanCause::Host), 600);
        assert_eq!(op.overhead_ns(), 0);
        assert!(r.check().is_clean());
    }

    #[test]
    fn nested_time_attributes_to_innermost_cause() {
        // host_write [0, 1000]
        //   gc [100, 400]
        //     merge [200, 300]
        //   swl [500, 900]
        let mut r = SpanReplayer::new();
        r.observe(&begin(1, 0, SpanKind::HostWrite, 0));
        r.observe(&begin(2, 1, SpanKind::Gc, 100));
        r.observe(&begin(3, 2, SpanKind::Merge, 200));
        r.observe(&end(3, 300));
        r.observe(&end(2, 400));
        r.observe(&begin(4, 1, SpanKind::Swl, 500));
        r.observe(&end(4, 900));
        let op = r.observe(&end(1, 1000)).expect("root closed");
        assert_eq!(op.ns(SpanCause::Host), 300); // 1000 − 300 (gc) − 400 (swl)
        assert_eq!(op.ns(SpanCause::Gc), 200); // 300 total − 100 merge
        assert_eq!(op.ns(SpanCause::Merge), 100);
        assert_eq!(op.ns(SpanCause::Swl), 400);
        assert_eq!(op.cause_ns.iter().sum::<u64>(), op.total_ns());
        assert!(r.check().is_clean());
    }

    #[test]
    fn programs_counted_per_op() {
        let mut r = SpanReplayer::new();
        r.observe(&begin(1, 0, SpanKind::HostWrite, 0));
        r.observe(&Event::Program { block: 0, page: 0 });
        r.observe(&Event::Program { block: 1, page: 0 });
        let op = r.observe(&end(1, 10)).unwrap();
        assert_eq!(op.programs, 2);
        // Next op starts from zero.
        r.observe(&begin(2, 0, SpanKind::HostWrite, 10));
        let op = r.observe(&end(2, 20)).unwrap();
        assert_eq!(op.programs, 0);
    }

    #[test]
    fn orphan_end_is_flagged() {
        let mut r = SpanReplayer::new();
        assert!(r.observe(&end(7, 10)).is_none());
        assert_eq!(r.check().orphan_ends, 1);
        assert!(!r.check().is_clean());
    }

    #[test]
    fn out_of_order_close_recovers_and_is_flagged() {
        let mut r = SpanReplayer::new();
        r.observe(&begin(1, 0, SpanKind::HostWrite, 0));
        r.observe(&begin(2, 1, SpanKind::Gc, 100));
        // Root closed while the GC span is still open.
        let op = r.observe(&end(1, 500)).expect("root closed");
        assert_eq!(r.check().id_mismatches, 1);
        assert_eq!(op.cause_ns.iter().sum::<u64>(), op.total_ns());
    }

    #[test]
    fn unclosed_needs_power_cut() {
        let mut r = SpanReplayer::new();
        r.observe(&begin(1, 0, SpanKind::HostWrite, 0));
        assert_eq!(r.check().unclosed, 1);
        assert!(!r.check().is_clean());
        assert!(!r.check().errors().is_empty());
        r.observe(&Event::PowerCut {
            at_op: 1,
            torn: true,
        });
        assert!(r.check().is_clean());
    }

    #[test]
    fn child_out_of_parent_bounds_is_flagged() {
        let mut r = SpanReplayer::new();
        r.observe(&begin(1, 0, SpanKind::HostWrite, 1000));
        r.observe(&begin(2, 1, SpanKind::Gc, 500)); // begins before parent
        r.observe(&end(2, 600));
        r.observe(&end(1, 2000));
        assert!(r.check().bounds_violations > 0);
    }

    #[test]
    fn cause_tokens_and_indices_are_stable() {
        for (i, cause) in SpanCause::ALL.iter().enumerate() {
            assert_eq!(cause.index(), i);
        }
        assert_eq!(SpanCause::Host.token(), "host");
        assert_eq!(SpanCause::Merge.token(), "merge");
        assert_eq!(SpanKind::Gc.cause(), SpanCause::Gc);
        assert_eq!(SpanKind::HostTrim.cause(), SpanCause::Host);
        assert!(SpanKind::HostRead.is_root());
        assert!(!SpanKind::Merge.is_root());
    }
}
