//! Streaming JSONL sink with bounded buffering.
//!
//! Events are serialized into an in-memory buffer that is flushed to the
//! underlying writer whenever it reaches its capacity — backpressure is
//! "write through now", never "drop events", so the log stays a lossless
//! record while memory stays bounded at roughly `capacity` bytes plus one
//! line regardless of run length.

use crate::{json, Event, Sink};
use std::io::{self, Write};

/// Default flush threshold for the internal buffer, in bytes.
pub const DEFAULT_BUFFER_CAPACITY: usize = 64 * 1024;

/// A [`Sink`] that streams events as JSON Lines into any [`Write`]r.
///
/// [`Sink::event`] cannot return errors, so I/O failures are held as a sticky
/// error and surfaced by [`finish`](JsonlSink::finish); after the first
/// failure, subsequent events are discarded.
pub struct JsonlSink<W: Write> {
    writer: W,
    buf: String,
    capacity: usize,
    lines: u64,
    io_error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Create a sink flushing through `writer`, with the default buffer
    /// capacity.
    pub fn new(writer: W) -> Self {
        Self::with_capacity(writer, DEFAULT_BUFFER_CAPACITY)
    }

    /// Create a sink whose buffer flushes once it holds at least `capacity`
    /// bytes. A zero capacity flushes after every event.
    pub fn with_capacity(writer: W, capacity: usize) -> Self {
        Self {
            writer,
            buf: String::with_capacity(capacity.min(1 << 20)),
            capacity,
            lines: 0,
            io_error: None,
        }
    }

    /// Number of event lines accepted so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Bytes currently waiting in the buffer.
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }

    fn flush_buf(&mut self) {
        if self.buf.is_empty() || self.io_error.is_some() {
            self.buf.clear();
            return;
        }
        if let Err(e) = self.writer.write_all(self.buf.as_bytes()) {
            self.io_error = Some(e);
        }
        self.buf.clear();
    }

    /// Flush buffered lines and the writer, returning the writer on success
    /// or the first I/O error encountered during the sink's lifetime.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_buf();
        if let Some(e) = self.io_error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn event(&mut self, event: Event) {
        if self.io_error.is_some() {
            return;
        }
        json::write_line(&mut self.buf, &event);
        self.buf.push('\n');
        self.lines += 1;
        if self.buf.len() >= self.capacity {
            self.flush_buf();
        }
    }
}

impl<W: Write> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("capacity", &self.capacity)
            .field("lines", &self.lines)
            .field("buffered_bytes", &self.buf.len())
            .field("io_error", &self.io_error)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cause;

    /// Writer that records how many times it was written to and the largest
    /// single write it saw, while failing after an optional write budget.
    #[derive(Default)]
    struct ProbeWriter {
        data: Vec<u8>,
        writes: usize,
        largest_write: usize,
        fail_after_writes: Option<usize>,
    }

    impl Write for ProbeWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if let Some(limit) = self.fail_after_writes {
                if self.writes >= limit {
                    return Err(io::Error::other("probe full"));
                }
            }
            self.writes += 1;
            self.largest_write = self.largest_write.max(buf.len());
            self.data.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn erase(block: u32) -> Event {
        Event::Erase {
            block,
            wear: block as u64,
            cause: Cause::Gc,
        }
    }

    #[test]
    fn bounded_buffer_backpressure_flushes_through_without_dropping() {
        let cap = 256;
        let mut sink = JsonlSink::with_capacity(ProbeWriter::default(), cap);
        let line_len = json::to_line(&erase(0)).len() + 1;
        let total = 500;
        for i in 0..total {
            sink.event(erase(i));
            // The buffer may momentarily hold the line that crossed the
            // threshold, but never grows past capacity + one line.
            assert!(
                sink.buffered_bytes() < cap + line_len + 8,
                "buffer grew unbounded: {} bytes",
                sink.buffered_bytes()
            );
        }
        assert_eq!(sink.lines(), total as u64);
        let writer = sink.finish().unwrap();
        // Backpressure wrote through multiple times rather than accumulating.
        assert!(writer.writes > 1, "expected multiple flushes");
        assert!(writer.largest_write <= cap + line_len + 8);
        // Nothing was dropped: every line parses and they are all present.
        let text = String::from_utf8(writer.data).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), total as usize);
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(json::parse_line(line).unwrap(), erase(i as u32));
        }
    }

    #[test]
    fn zero_capacity_flushes_every_event() {
        let mut sink = JsonlSink::with_capacity(ProbeWriter::default(), 0);
        for i in 0..10 {
            sink.event(erase(i));
            assert_eq!(sink.buffered_bytes(), 0);
        }
        let writer = sink.finish().unwrap();
        assert_eq!(writer.writes, 10);
    }

    #[test]
    fn io_error_is_sticky_and_surfaced_by_finish() {
        let writer = ProbeWriter {
            fail_after_writes: Some(0),
            ..ProbeWriter::default()
        };
        let mut sink = JsonlSink::with_capacity(writer, 0);
        sink.event(erase(1));
        sink.event(erase(2)); // discarded, no panic
        assert!(sink.finish().is_err());
    }
}
