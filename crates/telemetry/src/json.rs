//! Hand-rolled JSON Lines codec for [`Event`].
//!
//! The workspace builds offline with no external crates, so the codec is
//! written by hand against a deliberately tiny subset of JSON: every line is
//! one flat object whose values are unsigned integers or fixed string tokens
//! (no floats, no nesting, no escapes). [`write_line`] and [`parse_line`] are
//! exact inverses over that subset, which `swlstat` and the replay tests rely
//! on.

use crate::{Cause, Event, FaultKind, MergeKind, SpanKind};
use std::fmt::Write as _;

/// Serialize one event as a single JSON object (no trailing newline).
pub fn to_line(event: &Event) -> String {
    let mut s = String::with_capacity(48);
    write_line(&mut s, event);
    s
}

/// Append one event as a single JSON object (no trailing newline) to `out`.
///
/// Writing into a caller-owned buffer lets the streaming sink serialize
/// without a per-event allocation.
pub fn write_line(out: &mut String, event: &Event) {
    match *event {
        Event::Meta {
            version,
            blocks,
            pages_per_block,
        } => {
            let _ = write!(
                out,
                "{{\"e\":\"meta\",\"v\":{version},\"blocks\":{blocks},\"ppb\":{pages_per_block}}}"
            );
        }
        Event::Endurance { limit } => {
            let _ = write!(out, "{{\"e\":\"endurance\",\"limit\":{limit}}}");
        }
        Event::HostWrite { lba } => {
            let _ = write!(out, "{{\"e\":\"host_write\",\"lba\":{lba}}}");
        }
        Event::HostRead { lba } => {
            let _ = write!(out, "{{\"e\":\"host_read\",\"lba\":{lba}}}");
        }
        Event::HostTrim { lba } => {
            let _ = write!(out, "{{\"e\":\"host_trim\",\"lba\":{lba}}}");
        }
        Event::Program { block, page } => {
            let _ = write!(out, "{{\"e\":\"program\",\"b\":{block},\"pg\":{page}}}");
        }
        Event::Erase { block, wear, cause } => {
            let _ = write!(
                out,
                "{{\"e\":\"erase\",\"b\":{block},\"w\":{wear},\"c\":\"{}\"}}",
                cause.token()
            );
        }
        Event::LiveCopy {
            from_block,
            to_block,
            cause,
        } => {
            let _ = write!(
                out,
                "{{\"e\":\"copy\",\"from\":{from_block},\"to\":{to_block},\"c\":\"{}\"}}",
                cause.token()
            );
        }
        Event::GcPick {
            key,
            invalid,
            valid,
            free_depth,
            candidates,
        } => {
            let _ = write!(
                out,
                "{{\"e\":\"gc_pick\",\"key\":{key},\"inv\":{invalid},\"val\":{valid},\"free\":{free_depth},\"cand\":{candidates}}}"
            );
        }
        Event::Merge { vba, kind } => {
            let _ = write!(
                out,
                "{{\"e\":\"merge\",\"vba\":{vba},\"kind\":\"{}\"}}",
                kind.token()
            );
        }
        Event::Retire { block } => {
            let _ = write!(out, "{{\"e\":\"retire\",\"b\":{block}}}");
        }
        Event::FaultInjected { block, kind } => {
            let _ = write!(
                out,
                "{{\"e\":\"fault\",\"b\":{block},\"kind\":\"{}\"}}",
                kind.token()
            );
        }
        Event::PowerCut { at_op, torn } => {
            let _ = write!(
                out,
                "{{\"e\":\"power_cut\",\"op\":{at_op},\"torn\":{}}}",
                u8::from(torn)
            );
        }
        Event::SwlInvoke {
            ecnt,
            fcnt,
            threshold,
        } => {
            let _ = write!(
                out,
                "{{\"e\":\"swl_invoke\",\"ecnt\":{ecnt},\"fcnt\":{fcnt},\"t\":{threshold}}}"
            );
        }
        Event::IntervalReset {
            interval,
            ecnt,
            fcnt,
        } => {
            let _ = write!(
                out,
                "{{\"e\":\"interval_reset\",\"n\":{interval},\"ecnt\":{ecnt},\"fcnt\":{fcnt}}}"
            );
        }
        Event::SpanBegin {
            id,
            parent,
            kind,
            at_ns,
        } => {
            let _ = write!(
                out,
                "{{\"e\":\"span_begin\",\"id\":{id},\"p\":{parent},\"k\":\"{}\",\"ns\":{at_ns}}}",
                kind.token()
            );
        }
        Event::SpanEnd { id, at_ns } => {
            let _ = write!(out, "{{\"e\":\"span_end\",\"id\":{id},\"ns\":{at_ns}}}");
        }
        Event::Channel { id } => {
            let _ = write!(out, "{{\"e\":\"chan\",\"ch\":{id}}}");
        }
    }
}

/// A malformed or unrecognized JSONL line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The line is not a flat JSON object in the supported subset.
    Syntax(&'static str),
    /// The `"e"` field names an event kind this version doesn't know.
    UnknownKind(String),
    /// A required field is missing for the given event kind.
    MissingField {
        /// Event kind being parsed.
        kind: &'static str,
        /// Name of the missing field.
        field: &'static str,
    },
    /// A cause/kind token has an unrecognized value.
    UnknownToken(String),
    /// A numeric field holds a string, or vice versa.
    WrongType(&'static str),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Syntax(what) => write!(f, "malformed JSONL line: {what}"),
            ParseError::UnknownKind(kind) => write!(f, "unknown event kind {kind:?}"),
            ParseError::MissingField { kind, field } => {
                write!(f, "event {kind:?} is missing field {field:?}")
            }
            ParseError::UnknownToken(token) => write!(f, "unknown enum token {token:?}"),
            ParseError::WrongType(field) => write!(f, "field {field:?} has the wrong type"),
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value<'a> {
    Num(u64),
    Str(&'a str),
}

/// Parse the flat-object subset: `{"key":123,"key2":"token",...}`.
fn parse_object(line: &str) -> Result<Vec<(&str, Value<'_>)>, ParseError> {
    let line = line.trim();
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or(ParseError::Syntax("not wrapped in {}"))?;
    let mut fields = Vec::with_capacity(6);
    let mut rest = inner.trim();
    while !rest.is_empty() {
        // Key: a quoted string with no escapes.
        let after_quote = rest
            .strip_prefix('"')
            .ok_or(ParseError::Syntax("expected quoted key"))?;
        let end = after_quote
            .find('"')
            .ok_or(ParseError::Syntax("unterminated key"))?;
        let key = &after_quote[..end];
        if key.contains('\\') {
            return Err(ParseError::Syntax("escapes are not supported"));
        }
        let after_key = after_quote[end + 1..].trim_start();
        let after_colon = after_key
            .strip_prefix(':')
            .ok_or(ParseError::Syntax("expected ':' after key"))?
            .trim_start();
        let (value, tail) = if let Some(s) = after_colon.strip_prefix('"') {
            let vend = s.find('"').ok_or(ParseError::Syntax("unterminated value"))?;
            if s[..vend].contains('\\') {
                return Err(ParseError::Syntax("escapes are not supported"));
            }
            (Value::Str(&s[..vend]), &s[vend + 1..])
        } else {
            let vend = after_colon
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(after_colon.len());
            if vend == 0 {
                return Err(ParseError::Syntax("expected number or string value"));
            }
            let num = after_colon[..vend]
                .parse::<u64>()
                .map_err(|_| ParseError::Syntax("number out of range"))?;
            (Value::Num(num), &after_colon[vend..])
        };
        fields.push((key, value));
        rest = tail.trim_start();
        if let Some(next) = rest.strip_prefix(',') {
            rest = next.trim_start();
            if rest.is_empty() {
                return Err(ParseError::Syntax("trailing comma"));
            }
        } else if !rest.is_empty() {
            return Err(ParseError::Syntax("expected ',' between fields"));
        }
    }
    Ok(fields)
}

fn num(
    fields: &[(&str, Value<'_>)],
    kind: &'static str,
    field: &'static str,
) -> Result<u64, ParseError> {
    match fields.iter().find(|(k, _)| *k == field) {
        Some((_, Value::Num(n))) => Ok(*n),
        Some((_, Value::Str(_))) => Err(ParseError::WrongType(field)),
        None => Err(ParseError::MissingField { kind, field }),
    }
}

fn num32(
    fields: &[(&str, Value<'_>)],
    kind: &'static str,
    field: &'static str,
) -> Result<u32, ParseError> {
    u32::try_from(num(fields, kind, field)?).map_err(|_| ParseError::Syntax("number out of range"))
}

fn token<'a>(
    fields: &[(&'a str, Value<'a>)],
    kind: &'static str,
    field: &'static str,
) -> Result<&'a str, ParseError> {
    match fields.iter().find(|(k, _)| *k == field) {
        Some((_, Value::Str(s))) => Ok(s),
        Some((_, Value::Num(_))) => Err(ParseError::WrongType(field)),
        None => Err(ParseError::MissingField { kind, field }),
    }
}

fn cause(tok: &str) -> Result<Cause, ParseError> {
    match tok {
        "gc" => Ok(Cause::Gc),
        "swl" => Ok(Cause::Swl),
        "ext" => Ok(Cause::External),
        other => Err(ParseError::UnknownToken(other.to_string())),
    }
}

fn fault_kind(tok: &str) -> Result<FaultKind, ParseError> {
    match tok {
        "prog" => Ok(FaultKind::ProgramFail),
        "erase" => Ok(FaultKind::EraseFail),
        other => Err(ParseError::UnknownToken(other.to_string())),
    }
}

fn span_kind(tok: &str) -> Result<SpanKind, ParseError> {
    match tok {
        "host_write" => Ok(SpanKind::HostWrite),
        "host_read" => Ok(SpanKind::HostRead),
        "host_trim" => Ok(SpanKind::HostTrim),
        "gc" => Ok(SpanKind::Gc),
        "swl" => Ok(SpanKind::Swl),
        "merge" => Ok(SpanKind::Merge),
        other => Err(ParseError::UnknownToken(other.to_string())),
    }
}

fn merge_kind(tok: &str) -> Result<MergeKind, ParseError> {
    match tok {
        "full" => Ok(MergeKind::Full),
        "gc" => Ok(MergeKind::Gc),
        "swl" => Ok(MergeKind::Swl),
        other => Err(ParseError::UnknownToken(other.to_string())),
    }
}

/// Parse one JSONL line back into an [`Event`].
pub fn parse_line(line: &str) -> Result<Event, ParseError> {
    let fields = parse_object(line)?;
    let kind = token(&fields, "?", "e").map_err(|_| ParseError::Syntax("missing \"e\" kind"))?;
    match kind {
        "meta" => Ok(Event::Meta {
            version: num32(&fields, "meta", "v")?,
            blocks: num32(&fields, "meta", "blocks")?,
            pages_per_block: num32(&fields, "meta", "ppb")?,
        }),
        "endurance" => Ok(Event::Endurance {
            limit: num(&fields, "endurance", "limit")?,
        }),
        "host_write" => Ok(Event::HostWrite {
            lba: num(&fields, "host_write", "lba")?,
        }),
        "host_read" => Ok(Event::HostRead {
            lba: num(&fields, "host_read", "lba")?,
        }),
        "host_trim" => Ok(Event::HostTrim {
            lba: num(&fields, "host_trim", "lba")?,
        }),
        "program" => Ok(Event::Program {
            block: num32(&fields, "program", "b")?,
            page: num32(&fields, "program", "pg")?,
        }),
        "erase" => Ok(Event::Erase {
            block: num32(&fields, "erase", "b")?,
            wear: num(&fields, "erase", "w")?,
            cause: cause(token(&fields, "erase", "c")?)?,
        }),
        "copy" => Ok(Event::LiveCopy {
            from_block: num32(&fields, "copy", "from")?,
            to_block: num32(&fields, "copy", "to")?,
            cause: cause(token(&fields, "copy", "c")?)?,
        }),
        "gc_pick" => Ok(Event::GcPick {
            key: num32(&fields, "gc_pick", "key")?,
            invalid: num32(&fields, "gc_pick", "inv")?,
            valid: num32(&fields, "gc_pick", "val")?,
            free_depth: num32(&fields, "gc_pick", "free")?,
            candidates: num32(&fields, "gc_pick", "cand")?,
        }),
        "merge" => Ok(Event::Merge {
            vba: num32(&fields, "merge", "vba")?,
            kind: merge_kind(token(&fields, "merge", "kind")?)?,
        }),
        "retire" => Ok(Event::Retire {
            block: num32(&fields, "retire", "b")?,
        }),
        "fault" => Ok(Event::FaultInjected {
            block: num32(&fields, "fault", "b")?,
            kind: fault_kind(token(&fields, "fault", "kind")?)?,
        }),
        "power_cut" => Ok(Event::PowerCut {
            at_op: num(&fields, "power_cut", "op")?,
            torn: num(&fields, "power_cut", "torn")? != 0,
        }),
        "swl_invoke" => Ok(Event::SwlInvoke {
            ecnt: num(&fields, "swl_invoke", "ecnt")?,
            fcnt: num(&fields, "swl_invoke", "fcnt")?,
            threshold: num(&fields, "swl_invoke", "t")?,
        }),
        "interval_reset" => Ok(Event::IntervalReset {
            interval: num(&fields, "interval_reset", "n")?,
            ecnt: num(&fields, "interval_reset", "ecnt")?,
            fcnt: num(&fields, "interval_reset", "fcnt")?,
        }),
        "span_begin" => Ok(Event::SpanBegin {
            id: num(&fields, "span_begin", "id")?,
            parent: num(&fields, "span_begin", "p")?,
            kind: span_kind(token(&fields, "span_begin", "k")?)?,
            at_ns: num(&fields, "span_begin", "ns")?,
        }),
        "span_end" => Ok(Event::SpanEnd {
            id: num(&fields, "span_end", "id")?,
            at_ns: num(&fields, "span_end", "ns")?,
        }),
        "chan" => Ok(Event::Channel {
            id: num32(&fields, "chan", "ch")?,
        }),
        other => Err(ParseError::UnknownKind(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<Event> {
        vec![
            Event::Meta {
                version: 1,
                blocks: 64,
                pages_per_block: 32,
            },
            Event::Endurance { limit: 10_000 },
            Event::HostWrite { lba: 12345 },
            Event::HostRead { lba: 0 },
            Event::HostTrim { lba: u64::MAX },
            Event::Program { block: 3, page: 31 },
            Event::Erase {
                block: 7,
                wear: 199,
                cause: Cause::Gc,
            },
            Event::Erase {
                block: 8,
                wear: 1,
                cause: Cause::Swl,
            },
            Event::Erase {
                block: 9,
                wear: 2,
                cause: Cause::External,
            },
            Event::LiveCopy {
                from_block: 4,
                to_block: 9,
                cause: Cause::Swl,
            },
            Event::GcPick {
                key: 11,
                invalid: 30,
                valid: 2,
                free_depth: 5,
                candidates: 40,
            },
            Event::Merge {
                vba: 6,
                kind: MergeKind::Full,
            },
            Event::Merge {
                vba: 7,
                kind: MergeKind::Gc,
            },
            Event::Merge {
                vba: 8,
                kind: MergeKind::Swl,
            },
            Event::Retire { block: 63 },
            Event::FaultInjected {
                block: 17,
                kind: FaultKind::ProgramFail,
            },
            Event::FaultInjected {
                block: 18,
                kind: FaultKind::EraseFail,
            },
            Event::PowerCut {
                at_op: 5000,
                torn: true,
            },
            Event::PowerCut {
                at_op: 0,
                torn: false,
            },
            Event::SwlInvoke {
                ecnt: 1000,
                fcnt: 9,
                threshold: 100,
            },
            Event::IntervalReset {
                interval: 2,
                ecnt: 1500,
                fcnt: 64,
            },
            Event::SpanBegin {
                id: 1,
                parent: 0,
                kind: SpanKind::HostWrite,
                at_ns: 0,
            },
            Event::SpanBegin {
                id: 2,
                parent: 1,
                kind: SpanKind::Gc,
                at_ns: 600_000,
            },
            Event::SpanBegin {
                id: 3,
                parent: 1,
                kind: SpanKind::Swl,
                at_ns: 2_100_000,
            },
            Event::SpanBegin {
                id: 4,
                parent: 3,
                kind: SpanKind::Merge,
                at_ns: 2_150_000,
            },
            Event::SpanBegin {
                id: 5,
                parent: 0,
                kind: SpanKind::HostRead,
                at_ns: 9_000_000,
            },
            Event::SpanBegin {
                id: 6,
                parent: 0,
                kind: SpanKind::HostTrim,
                at_ns: 9_050_000,
            },
            Event::SpanEnd {
                id: 1,
                at_ns: u64::MAX,
            },
            Event::Channel { id: 0 },
            Event::Channel { id: 3 },
        ]
    }

    #[test]
    fn round_trips_every_variant() {
        for event in all_variants() {
            let line = to_line(&event);
            let back = parse_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, event, "line was {line}");
        }
    }

    #[test]
    fn tolerates_surrounding_whitespace() {
        let line = format!("  {}  ", to_line(&Event::Retire { block: 5 }));
        assert_eq!(parse_line(&line).unwrap(), Event::Retire { block: 5 });
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_line("").is_err());
        assert!(parse_line("not json").is_err());
        assert!(parse_line("{\"e\":\"warp\"}").is_err());
        assert!(parse_line("{\"e\":\"retire\"}").is_err()); // missing b
        assert!(parse_line("{\"e\":\"retire\",\"b\":\"x\"}").is_err()); // wrong type
        assert!(parse_line("{\"e\":\"erase\",\"b\":1,\"w\":1,\"c\":\"??\"}").is_err());
        assert!(parse_line("{\"e\":\"retire\",\"b\":1,}").is_err()); // trailing comma
    }

    #[test]
    fn parse_error_displays() {
        let err = parse_line("{\"e\":\"warp\"}").unwrap_err();
        assert!(err.to_string().contains("warp"));
    }
}
