//! Per-thread buffered emission with a deterministic ordered merge.
//!
//! [`SharedSink`](crate::SharedSink) interleaves lanes into one stream by
//! construction, but it is `Rc`-based and single-threaded. When every lane
//! of a multi-channel array runs on its own worker thread, each lane instead
//! emits into a private [`LaneBuffer`] — no synchronisation on the hot path —
//! and the front-end merges the buffers afterwards with
//! [`merge_lane_buffers`].
//!
//! The merge cannot use arrival time (that would make the log depend on
//! thread scheduling); instead the owning engine stamps every buffered event
//! with the *epoch* of the work unit that produced it (the host-op sequence
//! number, via [`LaneBuffer::set_epoch`]). Sorting by
//! `(epoch, lane, emission index)` is then a pure function of the workload:
//! two runs of the same trace produce byte-identical merged streams
//! regardless of thread count or timing. Within one epoch the merge groups
//! events by lane — the op-level interleaving differs from the
//! single-threaded [`SharedSink`](crate::SharedSink) stream, which serialises lanes page by
//! page, but the *set* of events per epoch and lane is identical.
//!
//! [`Event::Channel`] markers are re-inserted on lane switches, exactly as a
//! striped layer would, so per-channel attribution tools consume the merged
//! stream unchanged. A single-lane merge emits no markers.

use crate::{Event, Sink};

/// One buffered emission: the engine epoch it happened under plus the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Stamped {
    epoch: u64,
    event: Event,
}

/// A lane-private buffering sink for worker-thread emission.
///
/// Owns a plain `Vec` — emission is push-only and lock-free. The engine
/// advances the epoch stamp with [`LaneBuffer::set_epoch`] before handing
/// the lane each unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneBuffer {
    lane: u32,
    epoch: u64,
    entries: Vec<Stamped>,
}

impl LaneBuffer {
    /// An empty buffer for `lane`, starting at epoch 0.
    pub fn new(lane: u32) -> Self {
        Self {
            lane,
            epoch: 0,
            entries: Vec::new(),
        }
    }

    /// The lane this buffer belongs to.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Stamps all subsequent emissions with `epoch` (the sequence number of
    /// the work unit about to run). Epochs must be non-decreasing per lane
    /// for the merge to be meaningful; the engine's per-lane FIFO guarantees
    /// that.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Buffered events so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Sink for LaneBuffer {
    #[inline]
    fn event(&mut self, event: Event) {
        self.entries.push(Stamped {
            epoch: self.epoch,
            event,
        });
    }
}

/// Merges per-lane buffers into one deterministic stream ordered by
/// `(epoch, lane, emission index)`, re-inserting [`Event::Channel`] markers
/// whenever the emitting lane changes (none for a single-lane merge, so a
/// one-channel stream stays marker-free, as with a striped layer).
///
/// The sort is stable and every key is workload-derived, so the output is
/// independent of thread scheduling.
pub fn merge_lane_buffers(buffers: Vec<LaneBuffer>) -> Vec<Event> {
    let mut tagged: Vec<(u64, u32, usize, Event)> = Vec::new();
    for buffer in buffers {
        let lane = buffer.lane;
        for (index, stamped) in buffer.entries.into_iter().enumerate() {
            tagged.push((stamped.epoch, lane, index, stamped.event));
        }
    }
    tagged.sort_by_key(|&(epoch, lane, index, _)| (epoch, lane, index));

    let mut merged = Vec::with_capacity(tagged.len());
    let mut last_lane = 0u32;
    for (_, lane, _, event) in tagged {
        if lane != last_lane {
            merged.push(Event::Channel { id: lane });
            last_lane = lane;
        }
        merged.push(event);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_stamps_with_current_epoch() {
        let mut b = LaneBuffer::new(3);
        b.event(Event::HostWrite { lba: 1 });
        b.set_epoch(5);
        b.event(Event::HostRead { lba: 2 });
        assert_eq!(b.lane(), 3);
        assert_eq!(b.len(), 2);
        assert_eq!(b.entries[0].epoch, 0);
        assert_eq!(b.entries[1].epoch, 5);
    }

    #[test]
    fn merge_orders_by_epoch_then_lane() {
        let mut lane0 = LaneBuffer::new(0);
        let mut lane1 = LaneBuffer::new(1);
        // Lane 1 "runs ahead" and emits epoch 2 before lane 0 emits epoch 1:
        // the merge still orders by epoch, not emission time.
        lane1.set_epoch(2);
        lane1.event(Event::HostWrite { lba: 11 });
        lane0.set_epoch(1);
        lane0.event(Event::HostWrite { lba: 10 });
        lane0.set_epoch(2);
        lane0.event(Event::HostRead { lba: 12 });
        let merged = merge_lane_buffers(vec![lane0, lane1]);
        assert_eq!(
            merged,
            vec![
                Event::HostWrite { lba: 10 },
                Event::HostRead { lba: 12 },
                Event::Channel { id: 1 },
                Event::HostWrite { lba: 11 },
            ]
        );
    }

    #[test]
    fn single_lane_merge_has_no_markers() {
        let mut lane0 = LaneBuffer::new(0);
        lane0.event(Event::HostWrite { lba: 1 });
        lane0.set_epoch(1);
        lane0.event(Event::HostWrite { lba: 2 });
        let merged = merge_lane_buffers(vec![lane0]);
        assert!(merged
            .iter()
            .all(|e| !matches!(e, Event::Channel { .. })));
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn merge_is_emission_order_stable_within_lane_and_epoch() {
        let mut lane2 = LaneBuffer::new(2);
        lane2.set_epoch(7);
        for lba in 0..4 {
            lane2.event(Event::HostWrite { lba });
        }
        let merged = merge_lane_buffers(vec![LaneBuffer::new(0), lane2]);
        assert_eq!(merged[0], Event::Channel { id: 2 });
        for (i, event) in merged[1..].iter().enumerate() {
            assert_eq!(*event, Event::HostWrite { lba: i as u64 });
        }
    }
}
