//! Structured telemetry for the wear-leveling stack.
//!
//! The flash device, both translation layers, and the static wear leveler can
//! emit a stream of [`Event`]s into a [`Sink`]. Instrumented types are generic
//! over the sink and default to [`NullSink`], whose `ENABLED = false` constant
//! lets every emission site compile down to nothing — uninstrumented builds
//! pay zero cost (see the `telbench` bench in `flash-bench` for the release
//! -mode assertion).
//!
//! On top of the raw stream sit several consumers:
//!
//! - [`JsonlSink`]: streams events as JSON Lines through a
//!   bounded buffer, so scaled runs can dump logs without holding them in
//!   memory.
//! - [`MetricsAggregator`]: folds a stream
//!   (live or replayed from JSONL) into wear histograms, unevenness-level time
//!   series, per-interval erase/copy attribution, depth gauges, and per-cause
//!   latency histograms built from spans. Events are a lossless superset of
//!   the translation-layer counters, so replaying a log reproduces
//!   [`FlashCounters`] totals exactly.
//! - [`FlightRecorder`]: an always-on fixed-size ring
//!   of the most recent events, dumped as JSONL when a fault or power cut
//!   fires — a crash postmortem with real context.
//! - The `swlstat` and `swlspan` binaries in `flash-bench`, which render a
//!   replayed log as human-readable reports.
//!
//! The event vocabulary follows the quantities the DAC 2007 paper reasons
//! about: erase cause attribution (GC vs SWL), the unevenness level
//! `ecnt/fcnt`, and resetting-interval cadence. Schema v3 adds **causal
//! spans** ([`Event::SpanBegin`] / [`Event::SpanEnd`]): every host op opens a
//! root span and GC, SWL, and merge work nest underneath it with device-time
//! stamps, so each host write gets an exact breakdown of where its latency
//! went (see the [`span`] module).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod aggregate;
pub mod buffer;
mod counters;
pub mod flight;
pub mod health;
pub mod hist;
pub mod json;
pub mod jsonl;
pub mod runtime;
pub mod shared;
pub mod span;

pub use aggregate::{IntervalStats, MetricsAggregator, RetirementAudit, Snapshot, WearSummary};
pub use buffer::{merge_lane_buffers, LaneBuffer};
pub use counters::FlashCounters;
pub use flight::FlightRecorder;
pub use health::{
    forecast, Forecast, HealthConfig, HealthMonitor, HealthReport, HealthRuntime, HealthSample,
    HealthState, WearRateEstimator, HALF_LIFE_ERROR_BOUND,
};
pub use hist::LatencyHistogram;
pub use json::{parse_line, to_line, write_line, ParseError};
pub use jsonl::JsonlSink;
pub use runtime::{
    CacheRuntime, CacheSample, EngineMetricsReport, EngineRuntime, EngineSnapshot, LaneSample,
    QueueSample, WorkerSample,
};
pub use shared::SharedSink;
pub use span::{OpBreakdown, SpanCause, SpanCheck, SpanReplayer, SpanTracker};

/// Version of the JSONL event schema, recorded in the [`Event::Meta`] header
/// line. `swlstat --check` fails on logs with an unknown version.
///
/// Version history:
/// - 1: initial vocabulary (host ops, program/erase/copy, GC picks, merges,
///   retires, SWL invocations, interval resets).
/// - 2: adds the fault-injection events [`Event::FaultInjected`] and
///   [`Event::PowerCut`].
/// - 3: adds the causal-span events [`Event::SpanBegin`] and
///   [`Event::SpanEnd`] with device-time stamps; every host op opens a root
///   span and GC/SWL/merge work nests underneath it. Multi-channel streams
///   additionally carry [`Event::Channel`] markers (a compatible v3
///   extension: markers appear only when the active lane changes, so
///   single-channel logs are unchanged).
/// - 4: adds the [`Event::Endurance`] stream header carrying the device's
///   rated erase endurance, emitted right after [`Event::Meta`] when the
///   cell spec is known. Lets the health plane ([`health`]) forecast
///   time-to-first-block-failure from a replayed log without out-of-band
///   configuration. Optional: streams without it still parse.
pub const SCHEMA_VERSION: u32 = 4;

/// Why a block was erased (or a set of pages live-copied).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cause {
    /// Garbage collection reclaiming invalidated space.
    Gc,
    /// The static wear leveler moving cold data off young blocks.
    Swl,
    /// Direct caller-driven erase outside GC/SWL (formatting, tests).
    External,
}

impl Cause {
    /// Short stable token used in the JSONL encoding.
    pub fn token(self) -> &'static str {
        match self {
            Cause::Gc => "gc",
            Cause::Swl => "swl",
            Cause::External => "ext",
        }
    }
}

/// Which NFTL merge path retired a replacement block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MergeKind {
    /// Forced merge because the replacement block filled up.
    Full,
    /// Merge chosen by the garbage collector.
    Gc,
    /// Merge requested by the static wear leveler.
    Swl,
}

impl MergeKind {
    /// Short stable token used in the JSONL encoding.
    pub fn token(self) -> &'static str {
        match self {
            MergeKind::Full => "full",
            MergeKind::Gc => "gc",
            MergeKind::Swl => "swl",
        }
    }
}

/// Which kind of device fault the injection layer fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A page program failed; the target page is consumed (torn) and the
    /// block is marked grown-bad.
    ProgramFail,
    /// A block erase failed permanently; the block must be retired.
    EraseFail,
}

impl FaultKind {
    /// Short stable token used in the JSONL encoding.
    pub fn token(self) -> &'static str {
        match self {
            FaultKind::ProgramFail => "prog",
            FaultKind::EraseFail => "erase",
        }
    }
}

/// What a causal span covers. Root spans are the host operations; the other
/// kinds nest underneath them (or under each other, e.g. a merge inside an
/// SWL pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Root span of one host write, from entry into the translation layer to
    /// return — including any SWL-Procedure pass the write triggered.
    HostWrite,
    /// Root span of one host read.
    HostRead,
    /// Root span of one host trim.
    HostTrim,
    /// A garbage-collection episode (victim pick + relocation + erase).
    Gc,
    /// An SWL-Procedure activation (Algorithm 1 driving the Cleaner).
    Swl,
    /// An NFTL merge (copy phase + erasure of the old pair).
    Merge,
}

impl SpanKind {
    /// Short stable token used in the JSONL encoding.
    pub fn token(self) -> &'static str {
        match self {
            SpanKind::HostWrite => "host_write",
            SpanKind::HostRead => "host_read",
            SpanKind::HostTrim => "host_trim",
            SpanKind::Gc => "gc",
            SpanKind::Swl => "swl",
            SpanKind::Merge => "merge",
        }
    }

    /// The latency-attribution bucket device time inside this span (and
    /// outside any child span) is charged to.
    pub fn cause(self) -> SpanCause {
        match self {
            SpanKind::HostWrite | SpanKind::HostRead | SpanKind::HostTrim => SpanCause::Host,
            SpanKind::Gc => SpanCause::Gc,
            SpanKind::Swl => SpanCause::Swl,
            SpanKind::Merge => SpanCause::Merge,
        }
    }

    /// Whether this kind opens a root (host-operation) span.
    pub fn is_root(self) -> bool {
        matches!(
            self,
            SpanKind::HostWrite | SpanKind::HostRead | SpanKind::HostTrim
        )
    }
}

/// One structured telemetry event.
///
/// Counter-bearing events are emitted exactly once per counter increment in
/// the translation layers, which is what makes aggregator replay reproduce
/// [`FlashCounters`] totals exactly (asserted by the `telemetry_replay`
/// integration test).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Stream header: schema version and device geometry. Emitted when a sink
    /// is attached to a device, always first in a JSONL log.
    Meta {
        /// JSONL schema version ([`SCHEMA_VERSION`]).
        version: u32,
        /// Number of physical blocks in the device.
        blocks: u32,
        /// Pages per block.
        pages_per_block: u32,
    },
    /// Stream header (schema v4): the device's rated erase endurance.
    /// Emitted right after [`Event::Meta`] when the cell spec is known, so
    /// health replay can forecast lifetime without out-of-band config.
    /// Optional — streams without it still parse.
    Endurance {
        /// Rated program/erase cycles per block.
        limit: u64,
    },
    /// A host-issued logical write was accepted.
    HostWrite {
        /// Logical page address.
        lba: u64,
    },
    /// A host-issued logical read was served.
    HostRead {
        /// Logical page address.
        lba: u64,
    },
    /// A host-issued trim/discard invalidated a logical page.
    HostTrim {
        /// Logical page address.
        lba: u64,
    },
    /// A physical page program completed on the device.
    Program {
        /// Physical block index.
        block: u32,
        /// Page index within the block.
        page: u32,
    },
    /// A block erase completed on the device.
    Erase {
        /// Physical block index.
        block: u32,
        /// The block's cumulative erase count *after* this erase.
        wear: u64,
        /// What triggered the erase.
        cause: Cause,
    },
    /// One still-live page was copied out of a victim block before erase.
    LiveCopy {
        /// Source physical block.
        from_block: u32,
        /// Destination physical block.
        to_block: u32,
        /// Whether GC or SWL paid for the copy.
        cause: Cause,
    },
    /// The garbage collector picked a victim; carries depth gauges sampled at
    /// pick time.
    GcPick {
        /// Victim key (physical block for the FTL, virtual block for NFTL).
        key: u32,
        /// Invalid pages in the victim at pick time.
        invalid: u32,
        /// Valid pages that will need copying.
        valid: u32,
        /// Free-pool depth (blocks in the free ladder) at pick time.
        free_depth: u32,
        /// Number of candidate victims indexed by the `VictimIndex`.
        candidates: u32,
    },
    /// NFTL merged a (primary, replacement) pair back into one block.
    Merge {
        /// Virtual block address that was merged.
        vba: u32,
        /// Which merge path ran.
        kind: MergeKind,
    },
    /// A block exceeded its endurance budget and was retired from rotation.
    Retire {
        /// Physical block index.
        block: u32,
    },
    /// The fault-injection layer fired a deterministic device fault.
    FaultInjected {
        /// Physical block the fault hit.
        block: u32,
        /// What failed.
        kind: FaultKind,
    },
    /// The fault-injection layer cut power mid-run; every device operation
    /// fails until the harness power-cycles the chip.
    PowerCut {
        /// Index of the mutating operation (programs + erases) at which the
        /// cut fired.
        at_op: u64,
        /// Whether the in-flight operation was torn (partially applied)
        /// rather than cleanly dropped.
        torn: bool,
    },
    /// The static wear leveler activated (`ecnt/fcnt > T`, Algorithm 1).
    SwlInvoke {
        /// Total erases in the current resetting interval.
        ecnt: u64,
        /// BET flags set in the current resetting interval.
        fcnt: u64,
        /// Configured unevenness threshold `T`.
        threshold: u64,
    },
    /// The BET filled up and a new resetting interval began.
    IntervalReset {
        /// Index of the interval that just *ended* (0-based).
        interval: u64,
        /// `ecnt` at the moment of reset.
        ecnt: u64,
        /// `fcnt` at the moment of reset (all flags set).
        fcnt: u64,
    },
    /// A causal span opened (schema v3). Stamped with the device's
    /// cumulative busy time, so `end.at_ns - begin.at_ns` is exactly the
    /// device time spent inside the span.
    SpanBegin {
        /// Span id, unique within the stream (1-based; 0 is reserved).
        id: u64,
        /// Id of the enclosing span, or 0 for a root span.
        parent: u64,
        /// What the span covers.
        kind: SpanKind,
        /// Device busy time ([`nand` `busy_ns`]) when the span opened.
        at_ns: u64,
    },
    /// A causal span closed (schema v3). Spans close in LIFO order; a parent
    /// end implicitly closes any children the error path left open.
    SpanEnd {
        /// Id from the matching [`Event::SpanBegin`].
        id: u64,
        /// Device busy time when the span closed.
        at_ns: u64,
    },
    /// The active channel changed (schema v3 extension for multi-channel
    /// arrays): every following event belongs to channel `id` until the next
    /// marker. Emitted only when the active lane actually changes, so
    /// single-channel streams carry no markers and stay byte-identical to
    /// pre-channel logs. Consumers must treat the channel as 0 until the
    /// first marker.
    Channel {
        /// Channel (lane) index, 0-based.
        id: u32,
    },
}

/// Receiver for telemetry events.
///
/// Instrumented types are generic over `S: Sink` and guard every emission
/// with `if S::ENABLED { ... }`. [`NullSink`] sets `ENABLED = false`, so the
/// default monomorphization contains no telemetry code at all.
pub trait Sink {
    /// Whether this sink observes events. Emission sites are compiled out
    /// when `false`.
    const ENABLED: bool = true;

    /// Receive one event. Must not panic on any well-formed event.
    fn event(&mut self, event: Event);
}

/// The default sink: discards everything and disables emission sites at
/// compile time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl Sink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn event(&mut self, _event: Event) {}
}

/// A sink that only counts events — the cheapest *enabled* sink, used by the
/// overhead bench to bound the cost of the emission plumbing itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountSink {
    /// Number of events received.
    pub events: u64,
}

impl Sink for CountSink {
    #[inline(always)]
    fn event(&mut self, _event: Event) {
        self.events += 1;
    }
}

/// A sink that records every event in memory. Test helper; unbounded, so use
/// only on small runs.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// All events received, in emission order.
    pub events: Vec<Event>,
}

impl Sink for VecSink {
    #[inline]
    fn event(&mut self, event: Event) {
        self.events.push(event);
    }
}

impl<S: Sink> Sink for &mut S {
    const ENABLED: bool = S::ENABLED;

    #[inline(always)]
    fn event(&mut self, event: Event) {
        (**self).event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled<S: Sink>() -> bool {
        S::ENABLED
    }

    #[test]
    fn null_sink_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NullSink>(), 0);
        assert!(!enabled::<NullSink>());
        assert!(enabled::<CountSink>());
    }

    #[test]
    fn count_sink_counts() {
        let mut s = CountSink::default();
        s.event(Event::Retire { block: 1 });
        s.event(Event::HostRead { lba: 9 });
        assert_eq!(s.events, 2);
    }

    #[test]
    fn mut_ref_sink_forwards_and_inherits_enabled() {
        let mut s = VecSink::default();
        {
            let mut r = &mut s;
            <&mut VecSink as Sink>::event(&mut r, Event::Retire { block: 7 });
        }
        assert_eq!(s.events.len(), 1);
        assert!(enabled::<&mut VecSink>());
        assert!(!enabled::<&mut NullSink>());
    }
}
