//! Log-bucketed latency histograms.
//!
//! One histogram type serves both the simulator's per-run latency report and
//! the per-cause tail-latency attribution in
//! [`MetricsAggregator`](crate::MetricsAggregator). It is HDR-style in
//! spirit — fixed memory, mergeable, exact `count`/`total`/`max` — with
//! power-of-two buckets, so quantiles are bucket upper bounds rather than
//! exact order statistics.
//!
//! # Relative-error guarantee
//!
//! A value `v ≥ 1` lands in bucket `b = 64 − v.leading_zeros()`, whose upper
//! bound is `2^b − 1`. Since `2^(b−1) ≤ v ≤ 2^b − 1`, the reported bound
//! satisfies `v ≤ upper_bound(v) < 2·v`: every quantile over-reports by
//! strictly less than 2×, and never under-reports. `v = 0` is exact (bucket
//! 0 reports 0). The property tests in `tests/properties.rs` pin this bound
//! down along with merge-equals-concatenation and quantile monotonicity.

use std::fmt;

/// Number of power-of-two latency buckets (covers 1 ns .. ~1100 s).
const BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram with exact count/total/max.
///
/// Re-exported by `flash-sim` as `LatencyStats` for per-run host-operation
/// reports, and used per [`SpanCause`](crate::SpanCause) by the aggregator.
///
/// # Example
///
/// ```
/// use flash_telemetry::LatencyHistogram;
///
/// let mut stats = LatencyHistogram::new();
/// for latency in [100, 200, 200, 400, 10_000] {
///     stats.record(latency);
/// }
/// assert_eq!(stats.count(), 5);
/// assert_eq!(stats.max_ns(), 10_000);
/// assert!(stats.quantile(0.5) >= 128 && stats.quantile(0.5) <= 512);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            total_ns: 0,
            max_ns: 0,
        }
    }

    /// Records one operation of `latency_ns`.
    pub fn record(&mut self, latency_ns: u64) {
        let bucket = (64 - latency_ns.leading_zeros()) as usize;
        self.buckets[bucket.min(BUCKETS - 1)] += 1;
        self.count += 1;
        self.total_ns += latency_ns;
        self.max_ns = self.max_ns.max(latency_ns);
    }

    /// Operations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded latencies in nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Largest observed latency.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Approximate quantile (upper bound of the bucket containing it).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bucket, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of this bucket: 2^bucket − 1 (bucket 0 = 0 ns).
                return if bucket == 0 { 0 } else { (1u64 << bucket) - 1 };
            }
        }
        self.max_ns
    }

    /// Merges another histogram into this one.
    ///
    /// Counts, totals, and every bucket add; the result is indistinguishable
    /// from recording both input streams into one histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={}, mean {:.1} µs, p50 ≤ {:.1} µs, p99 ≤ {:.1} µs, max {:.1} µs",
            self.count,
            self.mean_ns() / 1e3,
            self.quantile(0.5) as f64 / 1e3,
            self.quantile(0.99) as f64 / 1e3,
            self.max_ns as f64 / 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let stats = LatencyHistogram::new();
        assert_eq!(stats.count(), 0);
        assert_eq!(stats.total_ns(), 0);
        assert_eq!(stats.mean_ns(), 0.0);
        assert_eq!(stats.quantile(0.99), 0);
    }

    #[test]
    fn exact_aggregates() {
        let mut stats = LatencyHistogram::new();
        stats.record(100);
        stats.record(300);
        assert_eq!(stats.count(), 2);
        assert_eq!(stats.total_ns(), 400);
        assert_eq!(stats.mean_ns(), 200.0);
        assert_eq!(stats.max_ns(), 300);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut stats = LatencyHistogram::new();
        for _ in 0..99 {
            stats.record(1_000);
        }
        stats.record(1_000_000);
        let p50 = stats.quantile(0.5);
        assert!((512..=2048).contains(&p50), "p50 bucket bound {p50}");
        let p995 = stats.quantile(0.995);
        assert!(
            p995 >= 524_287,
            "tail must reach the outlier bucket: {p995}"
        );
    }

    #[test]
    fn zero_latency_lands_in_bucket_zero() {
        let mut stats = LatencyHistogram::new();
        stats.record(0);
        assert_eq!(stats.quantile(1.0), 0);
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHistogram::new();
        a.record(10);
        let mut b = LatencyHistogram::new();
        b.record(1_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.total_ns(), 1_010);
        assert_eq!(a.max_ns(), 1_000);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_rejected() {
        LatencyHistogram::new().quantile(1.5);
    }

    #[test]
    fn display_in_microseconds() {
        let mut stats = LatencyHistogram::new();
        stats.record(1_500_000);
        assert!(stats.to_string().contains("max 1500.0 µs"));
    }

    #[test]
    fn quantile_bound_within_factor_two() {
        for v in [1u64, 2, 3, 7, 8, 9, 1023, 1024, 123_456_789] {
            let mut stats = LatencyHistogram::new();
            stats.record(v);
            let bound = stats.quantile(1.0);
            assert!(bound >= v, "bound {bound} under-reports {v}");
            assert!(bound < 2 * v, "bound {bound} ≥ 2×{v}");
        }
    }
}
