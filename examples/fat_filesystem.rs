//! A FAT filesystem on flash — Figure 1 of the paper, end to end.
//!
//! The session scripts ordinary file activity (create, append, rewrite,
//! delete) on a FAT volume; every operation's page-level traffic runs
//! through the FTL. The file allocation table pages become ferociously hot
//! while file contents sit cold — the exact pattern that wears out a chip
//! under dynamic-only wear leveling and that the SW Leveler repairs.
//!
//! ```text
//! cargo run --release --example fat_filesystem
//! ```

use flash_sim::{Simulator, StopCondition, TranslationLayer};
use flash_trace::fat::{FatSession, FatSessionSpec, FatVolume};
use ftl::{FtlConfig, PageMappedFtl};
use nand::{CellKind, Geometry, NandDevice, WearMap};
use swl_core::SwlConfig;

const BLOCKS: u32 = 64;
const PAGES: u32 = 32;

fn run(swl: Option<SwlConfig>) -> Result<flash_sim::SimReport, Box<dyn std::error::Error>> {
    let device = NandDevice::new(
        Geometry::new(BLOCKS, PAGES, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    );
    let mut ftl = match swl {
        Some(config) => PageMappedFtl::with_swl(device, FtlConfig::default(), config)?,
        None => PageMappedFtl::new(device, FtlConfig::default())?,
    };
    let volume = FatVolume::new(TranslationLayer::logical_pages(&ftl))?;
    let session = FatSession::new(volume, FatSessionSpec::default().with_seed(11));
    let report =
        Simulator::new().run(&mut ftl, session.take(2_000_000), StopCondition::default())?;
    println!("{report}");
    println!(
        "{}\n",
        WearMap::from_counts(&TranslationLayer::device(&ftl).erase_counts())
    );
    Ok(report)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "FAT volume on a {BLOCKS}-block chip: file ops hammer the FAT pages\n\
         while file contents stay cold.\n"
    );

    println!("--- dynamic wear leveling only ---");
    let plain = run(None)?;

    println!("--- with the SW Leveler (T=8, k=0) ---");
    let leveled = run(Some(SwlConfig::new(8, 0).with_seed(11)))?;

    let plain_dev = plain.erase_stats.std_dev;
    let leveled_dev = leveled.erase_stats.std_dev;
    println!(
        "erase-count deviation {plain_dev:.1} -> {leveled_dev:.1}; \
         max {} -> {}",
        plain.erase_stats.max, leveled.erase_stats.max
    );
    assert!(leveled_dev < plain_dev, "SWL must flatten filesystem wear");
    Ok(())
}
