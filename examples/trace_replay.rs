//! Replaying an external, sector-addressed trace — the workflow the paper
//! itself used (a DiskMon-style log of 512 B sector accesses driven into
//! the FTL).
//!
//! The example writes a small synthetic sector trace to a temp file in the
//! interchange format, then reads it back, converts sectors to flash pages
//! with [`SectorMapper`], and replays it through NFTL with the SW Leveler.
//!
//! ```text
//! cargo run --example trace_replay
//! ```

use std::io::Write as _;

use flash_sim::{Simulator, StopCondition, TranslationLayer};
use flash_trace::{parse_trace, write_trace, Op, SectorMapper, TraceEvent};
use nand::{CellKind, Geometry, NandDevice};
use nftl::{BlockMappedNftl, NftlConfig};
use swl_core::SwlConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Fabricate a sector-level trace: a boot burst, a cold archive dump,
    //    then a journal hammering the same few sectors.
    let mut events = Vec::new();
    let mut t = 0u64;
    for sector in 0..256u64 {
        events.push(TraceEvent {
            at_ns: t,
            op: Op::Write,
            lba: sector,
            len: 8,
        });
        t += 1_000_000;
    }
    for round in 0..4_000u64 {
        events.push(TraceEvent {
            at_ns: t,
            op: if round % 5 == 0 { Op::Read } else { Op::Write },
            lba: 4096 + (round % 4) * 4,
            len: 4,
        });
        t += 500_000_000;
    }

    // 2. Round-trip through the text interchange format, as an external
    //    tool would produce it.
    let path = std::env::temp_dir().join("swl_repro_example.trace");
    let mut file = std::fs::File::create(&path)?;
    file.write_all(write_trace(&events).as_bytes())?;
    drop(file);
    let text = std::fs::read_to_string(&path)?;
    let parsed = parse_trace(&text)?;
    println!(
        "loaded {} sector events from {}",
        parsed.len(),
        path.display()
    );

    // 3. Sectors → pages (512 B sectors on 2 KiB pages, the paper's
    //    configuration).
    let mapper = SectorMapper::default();
    let page_events: Vec<TraceEvent> = mapper.map_trace(parsed).collect();
    let max_page = page_events
        .iter()
        .map(|e| e.lba + u64::from(e.len))
        .max()
        .unwrap();
    println!(
        "mapped to {} page events over {} logical pages",
        page_events.len(),
        max_page
    );

    // 4. Replay through NFTL + SWL.
    let device = NandDevice::new(
        Geometry::new(96, 32, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    );
    let mut nftl = BlockMappedNftl::with_swl(
        device,
        NftlConfig::default(),
        SwlConfig::new(20, 0).with_seed(1),
    )?;
    let report = Simulator::new().run(&mut nftl, page_events, StopCondition::default())?;
    println!("\n{report}");
    println!(
        "\nwear map:\n{}",
        nand::WearMap::from_counts(&TranslationLayer::device(&nftl).erase_counts())
            .with_row_width(48)
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
