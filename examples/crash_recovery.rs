//! BET persistence across power cycles (§3.2 of the paper): save the
//! SW Leveler's state with the dual-buffer scheme, tear the newest copy to
//! simulate a crash mid-save, and recover from the older snapshot.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```

use ftl::{FtlConfig, PageMappedFtl};
use nand::{CellKind, Geometry, NandDevice};
use swl_core::persist::DualBuffer;
use swl_core::SwlConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let device = NandDevice::new(
        Geometry::new(64, 32, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    );
    let mut ftl = PageMappedFtl::with_swl(
        device,
        FtlConfig::default(),
        SwlConfig::new(60, 1).with_seed(5),
    )?;

    // First session: cold fill plus hot churn.
    for lba in 0..800 {
        ftl.write(lba, lba)?;
    }
    for round in 0..12_000u64 {
        ftl.write(1500 + round % 8, round)?;
    }

    // The controller periodically checkpoints the leveler into NVRAM.
    let mut nvram = DualBuffer::new();
    nvram.save(ftl.swl().expect("leveler attached"));
    println!(
        "checkpoint 1: ecnt={}, fcnt={}, findex={}",
        ftl.swl().unwrap().ecnt(),
        ftl.swl().unwrap().fcnt(),
        ftl.swl().unwrap().findex()
    );

    // More activity, second checkpoint...
    for round in 0..4_000u64 {
        ftl.write(1500 + round % 8, round)?;
    }
    nvram.save(ftl.swl().unwrap());
    println!(
        "checkpoint 2: ecnt={}, fcnt={}",
        ftl.swl().unwrap().ecnt(),
        ftl.swl().unwrap().fcnt()
    );

    // ...and the power fails halfway through writing checkpoint 2 (the
    // even sequence number lands in slot 0): the newest slot is torn.
    let torn = nvram.slot_mut(0).expect("checkpoint 2 occupies slot 0");
    let cut = torn.len() / 2;
    torn.truncate(cut);

    // Power-on: recover the newest *valid* snapshot — checkpoint 1.
    let snapshot = nvram.recover()?;
    println!("recovered snapshot sequence {}", snapshot.sequence());
    let restored = snapshot.into_leveler()?;
    println!(
        "restored leveler: ecnt={}, fcnt={} (stale but consistent, as §3.2\n\
         allows: \"we can simply use those saved in the flash memory\n\
         previously\")",
        restored.ecnt(),
        restored.fcnt()
    );

    // The restored leveler drops into a fresh FTL session and keeps
    // leveling.
    let device = NandDevice::new(
        Geometry::new(64, 32, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    );
    let mut ftl = PageMappedFtl::new(device, FtlConfig::default())?;
    ftl.attach_swl(restored);
    for round in 0..20_000u64 {
        ftl.write(round % 1000, round)?;
    }
    println!(
        "second session completed: {} swl erases, erase stats: {}",
        ftl.counters().swl_erases,
        ftl.device().erase_stats()
    );
    Ok(())
}
