//! An embedded media recorder on NFTL: a large, never-rewritten media
//! library plus a small, furiously updated metadata/log region.
//!
//! This is the configuration where dynamic wear leveling alone fails
//! hardest — the media blocks pin most of the chip at zero wear while the
//! log region burns out. The example prints a coarse per-block wear map
//! with and without the SW Leveler.
//!
//! ```text
//! cargo run --release --example media_logger
//! ```

use nand::{CellKind, Geometry, NandDevice, WearMap};
use nftl::{BlockMappedNftl, NftlConfig};
use swl_core::SwlConfig;

const BLOCKS: u32 = 64;
const PAGES: u32 = 32;

fn run(swl: Option<SwlConfig>) -> Result<BlockMappedNftl, nftl::NftlError> {
    let device = NandDevice::new(
        Geometry::new(BLOCKS, PAGES, 2048),
        CellKind::Mlc2.spec().with_endurance(u32::MAX),
    );
    let mut nftl = match swl {
        Some(config) => BlockMappedNftl::with_swl(device, NftlConfig::default(), config)?,
        None => BlockMappedNftl::new(device, NftlConfig::default())?,
    };

    // The media library: 60 % of the logical space, written once.
    let media_pages = nftl.logical_pages() * 6 / 10;
    for lba in 0..media_pages {
        nftl.write(lba, 0x4D45_4449_4100 + lba)?;
    }

    // The recorder's metadata region: 16 pages, updated on every clip.
    let meta_base = nftl.logical_pages() - 64;
    for clip in 0..60_000u64 {
        nftl.write(meta_base + clip % 16, clip)?;
    }

    // The library is intact regardless of how much the metadata churned.
    for lba in (0..media_pages).step_by(97) {
        assert_eq!(nftl.read(lba)?, Some(0x4D45_4449_4100 + lba));
    }
    Ok(nftl)
}

fn wear_map(label: &str, nftl: &BlockMappedNftl) {
    println!("{label}:");
    let map = WearMap::from_counts(&nftl.device().erase_counts());
    println!("{map}\n");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "media recorder on NFTL: {BLOCKS} blocks, 60% write-once media,\n\
         16 hot metadata pages\n"
    );
    let plain = run(None)?;
    wear_map("dynamic wear leveling only", &plain);

    let leveled = run(Some(SwlConfig::new(10, 0).with_seed(3)))?;
    wear_map("with the SW Leveler (T=10, k=0)", &leveled);

    let plain_stats = plain.device().erase_stats();
    let leveled_stats = leveled.device().erase_stats();
    println!(
        "max erase count {} -> {}; deviation {:.1} -> {:.1}",
        plain_stats.max, leveled_stats.max, plain_stats.std_dev, leveled_stats.std_dev
    );
    assert!(leveled_stats.std_dev < plain_stats.std_dev);
    Ok(())
}
