//! Quickstart: build a simulated MLC×2 chip, run a page-mapping FTL with
//! static wear leveling on top, and inspect the wear statistics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ftl::{FtlConfig, PageMappedFtl};
use nand::{CellKind, Geometry, NandDevice};
use swl_core::SwlConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down MLC×2 chip: 64 blocks × 128 pages × 2 KiB.
    let geometry = Geometry::mlc2_1gib().with_blocks(64);
    let device = NandDevice::new(geometry, CellKind::Mlc2.spec());
    println!("chip: {geometry}");

    // FTL with the SW Leveler attached (unevenness threshold T=10,
    // one BET flag per block).
    let mut ftl = PageMappedFtl::with_swl(
        device,
        FtlConfig::default(),
        SwlConfig::new(10, 0).with_seed(7),
    )?;

    // Cold data: 2000 pages written once — a firmware image, say.
    for lba in 0..2000 {
        ftl.write(lba, 0xC01D_0000 + lba)?;
    }

    // Hot data: a handful of pages updated relentlessly — a database
    // journal.
    for round in 0..120_000u64 {
        let lba = 7000 + round % 8;
        ftl.write(lba, round)?;
    }

    // Reads see the newest version of everything.
    assert_eq!(ftl.read(0)?, Some(0xC01D_0000));
    assert_eq!(ftl.read(7000)?, Some(119_992));

    let stats = ftl.device().erase_stats();
    let counters = ftl.counters();
    let swl = ftl.swl().expect("leveler attached");
    println!("erase counts: {stats}");
    println!(
        "erases: {} gc + {} swl; live copies: {} gc + {} swl",
        counters.gc_erases, counters.swl_erases, counters.gc_live_copies, counters.swl_live_copies
    );
    println!(
        "SWL: {} activations, {} block sets cleaned, {} interval resets",
        swl.stats().activations,
        swl.stats().sets_cleaned,
        swl.stats().interval_resets
    );
    println!("write amplification: {:.2}", counters.write_amplification());

    // Thanks to static wear leveling, even the blocks pinned under the
    // firmware image participated in wear.
    assert!(stats.min > 0, "every block should have been erased");
    Ok(())
}
