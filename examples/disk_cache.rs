//! Flash as a hard-disk cache — the paper's motivating high-frequency
//! scenario (Intel Robson / Windows ReadyDrive).
//!
//! A disk cache hits flash with far more writes per second than a plain
//! storage workload, so endurance headroom evaporates: the paper notes that
//! FTL's seemingly comfortable first-failure time "could be substantially
//! shortened when flash memory is adopted in designs with a higher access
//! frequency, e.g., disk cache". This example runs the paper workload at
//! 25× the base write rate and compares the first failure time of FTL with
//! and without the SW Leveler.
//!
//! ```text
//! cargo run --release --example disk_cache
//! ```

use flash_sim::experiments::{paper_workload, ExperimentScale};
use flash_sim::{Layer, LayerKind, SimConfig, Simulator, StopCondition, TranslationLayer};
use flash_trace::SegmentResampler;
use swl_core::SwlConfig;

fn run(swl: Option<SwlConfig>) -> Result<flash_sim::SimReport, flash_sim::SimError> {
    let scale = ExperimentScale {
        blocks: 128,
        pages_per_block: 64,
        endurance: 512,
        seed: 11,
    };
    let mut layer = Layer::build(LayerKind::Ftl, scale.device(), swl, &SimConfig::default())?;
    // Cache traffic: the same locality structure, 25× the write rate.
    let spec = paper_workload(layer.logical_pages(), scale.seed).with_rates(45.0, 50.0);
    let trace = spec
        .fill_events()
        .chain(SegmentResampler::from_spec(spec.clone(), 77));
    Simulator::new().run(&mut layer, trace, StopCondition::first_failure())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("disk-cache scenario: FTL under 25x write pressure\n");

    let baseline = run(None)?;
    let leveled = run(Some(SwlConfig::new(5, 0).with_seed(11)))?; // T=100 scaled to 512-cycle endurance

    let base_ff = baseline.first_failure.expect("cache wears out fast");
    let swl_ff = leveled
        .first_failure
        .expect("leveled cache still wears out");

    println!(
        "baseline  : first failure after {:.3} years",
        base_ff.years()
    );
    println!("            {}", baseline.erase_stats);
    println!(
        "with SWL  : first failure after {:.3} years",
        swl_ff.years()
    );
    println!("            {}", leveled.erase_stats);
    println!(
        "\nlifetime extension: {:+.1}%  (erase-count deviation {:.1} -> {:.1})",
        (swl_ff.years() / base_ff.years() - 1.0) * 100.0,
        baseline.erase_stats.std_dev,
        leveled.erase_stats.std_dev
    );

    assert!(
        swl_ff.years() > base_ff.years(),
        "static wear leveling should extend cache lifetime"
    );
    Ok(())
}
